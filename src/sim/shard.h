// Conservative-lookahead parallel scheduler over per-shard simulators.
//
// A sharded testbed partitions the event space structurally: shard 0 owns
// the client domain (initiators, workers, KV layer, crash timers) and each
// further shard owns one target core together with every SSD pipeline
// mapped onto it (GimbalSwitch/DRR/token bucket, device model, per-core
// FifoResource). Within a shard, events execute exactly as on the serial
// engine — same EventQueue, same (when, seq) ordering contract.
//
// Shards only interact through the fabric: an initiator-to-target
// submission or a target-to-client completion always crosses the modeled
// network and therefore arrives at least NetworkConfig::base_latency after
// it was sent. That minimum is the engine's *lookahead* W, and it makes a
// conservative PDES protocol safe (docs/SIMULATOR.md):
//
//   epoch:    every shard runs its events up to the uniform horizon
//             E = T + W - 1 (T = earliest pending event anywhere); no
//             cross-shard send issued at t >= T can deliver at or
//             before E.
//   barrier:  cross-shard sends buffered during the epoch are folded
//             into the shared link in one canonical order and injected
//             into their destination shards; they all deliver strictly
//             after E.
//
// Adaptive coarsening: an epoch barrier is only *useful* when it has
// sends to replay or when several shards need a common horizon. Right
// after a barrier every outbox is empty, so whenever exactly one shard
// holds pending events the engine runs that shard's uniform sub-epochs
// back to back on the control thread — no worker doorbells, no done
// waits — calling the barrier hook at each quiet sub-boundary (replay is
// a no-op there) and stopping only once the shard buffers a cross-shard
// send. The executed schedule, the barrier-hook call sequence and hence
// the stitched trace are bit-identical to the uniform engine's; only the
// number of full synchronization rounds (epochs()) drops. On sparse
// cross-shard traffic this collapses most barriers
// (tests/shard_adaptive_test.cc pins both the digest identity and the
// reduction).
//
// Determinism: the schedule inside a shard never depends on other shards
// within an epoch, horizons and the coarsening decision are pure
// functions of queue states at the barrier, and the barrier replays
// buffered sends in a canonical (send_time, source shard, issue order)
// order — so the full event trace is bit-identical for any worker-thread
// count, including 1. The thread count only chooses how many shards
// execute concurrently per epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace gimbal::sim {

class ShardedEngine : public Simulator::Engine {
 public:
  struct Config {
    int threads = 1;  // worker pool size (clamped to [1, num_shards])
    Tick lookahead = 0;  // min cross-shard latency; must be > 0
    EventQueue::Impl impl = EventQueue::Impl::kTimingWheel;
    // Coarsen single-shard stretches into one synchronization round (see
    // file comment). The executed schedule is identical either way; false
    // forces a full barrier per uniform epoch, which the adaptive-epoch
    // tests use as the A side of their A/B digest comparison.
    bool adaptive = true;
    // Epochs whose active shards hold fewer than this many live events in
    // total run on the control thread even when workers are available:
    // waking a worker costs more than a handful of events. Purely a
    // dispatch heuristic — the schedule is identical either way.
    size_t serial_grain = 32;
  };

  ShardedEngine(int num_shards, const Config& config);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  Simulator& shard(int i) { return *shards_[i]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threads_; }

  // Runs on the control thread at every epoch barrier (all shards
  // quiescent) and at every quiet sub-epoch boundary inside a coarsened
  // epoch. The testbed hooks the network's cross-shard replay and its
  // trace batch marks here. Keep it cheap: it runs once per uniform
  // epoch, which is the engine's synchronization constant factor.
  void set_barrier_fn(std::function<void()> fn) { barrier_fn_ = std::move(fn); }

  // Runs once at the end of every EngineRunUntil / EngineRunToIdle, after
  // the final barrier. The testbed defers per-epoch observability work
  // (trace stitching) here, so it is paid per Run, not per epoch.
  void set_run_end_fn(std::function<void()> fn) {
    run_end_fn_ = std::move(fn);
  }

  // Coarsening probe: returns true while cross-shard sends sit buffered in
  // the fabric's outboxes. A coarsened epoch must stop at the first
  // sub-epoch that buffers a send — the destination shard gains an event
  // at send + W and the single-shard premise breaks. Coarsening stays off
  // until this is set; the testbed wires it to fabric::Network.
  void set_pending_sends_fn(std::function<bool()> fn) {
    pending_sends_fn_ = std::move(fn);
  }

  // Simulator::Engine: shard 0 delegates its Run()/RunUntil() here, so
  // `testbed.sim().RunUntil(t)` drives the whole sharded testbed.
  void EngineRunUntil(Tick deadline) override;
  void EngineRunToIdle() override;

  // Full synchronization rounds (worker dispatch + replay barrier) so far.
  // Coarsening makes this *smaller* for the same run, never different
  // across thread counts.
  uint64_t epochs() const { return epochs_; }

  // Times a worker was woken for an epoch and then claimed no shard. The
  // control thread rings exactly min(workers, active_shards - 1)
  // doorbells, so this stays 0 unless claim racing leaves a woken worker
  // empty-handed; on sparse traffic (single active shard per epoch) no
  // doorbell rings at all. Surfaced as the `shard.idle_wakeups` metric.
  uint64_t idle_wakeups() const {
    return idle_wakeups_.load(std::memory_order_relaxed);
  }

  // Shard context of the currently-executing event, or -1 / nullptr when
  // no shard event is running (control thread between epochs, or a plain
  // unsharded simulator). Thread-local.
  static int CurrentShard();
  static Simulator* CurrentSim();

 private:
  static constexpr Tick kNone = -1;
  static constexpr int kSpinLimit = 4096;

  // One cache line per worker: the control thread publishes an epoch by
  // storing its sequence number into `go` (a doorbell only that worker
  // reads) and the worker posts the same number into `done` when its claim
  // loop drains. `parked`/the engine-wide `waiting_` flag implement an
  // eventcount: futex syscalls happen only when the other side actually
  // went to sleep, so back-to-back epochs synchronize with plain loads.
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> go{0};
    std::atomic<uint64_t> done{0};
    std::atomic<uint32_t> parked{0};
  };

  // Computes the uniform horizon for the next epoch from the shards' queue
  // states; returns false when no event is pending at or before
  // `deadline` (kNone = no deadline). Also notes whether exactly one shard
  // holds events, which is what arms coarsening in RunEpoch.
  bool ComputeEpoch(Tick deadline);
  void RunEpoch(Tick deadline);
  // Runs the single live shard's uniform sub-epochs back to back until it
  // buffers a send, drains, or passes `deadline`.
  void RunCoarse(Tick deadline);
  void Barrier();
  void RunEnd();
  void WorkerMain(int index);
  bool RunClaimedShards();  // claim loop shared by workers and control
  void Ring(WorkerSlot& slot, uint64_t seq);
  void WaitDone(WorkerSlot& slot, uint64_t seq);

  std::vector<std::unique_ptr<Simulator>> shards_;
  Tick lookahead_;
  int threads_;
  bool adaptive_;
  size_t serial_grain_;
  std::function<void()> barrier_fn_;
  std::function<void()> run_end_fn_;
  std::function<bool()> pending_sends_fn_;
  uint64_t epochs_ = 0;

  // Epoch state: written by the control thread while every worker is
  // parked (enforced by last epoch's done wait), published by the
  // release store in Ring().
  std::vector<int> active_;  // shard indices with events in this epoch
  Tick epoch_end_ = 0;
  int sole_live_ = -1;  // the only shard with pending events, or -1
  uint64_t seq_ = 0;  // control-thread epoch sequence
  std::atomic<uint64_t> next_claim_{0};
  std::atomic<uint32_t> waiting_{0};  // control parked on a done counter
  std::atomic<uint64_t> idle_wakeups_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace gimbal::sim
