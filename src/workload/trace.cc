#include "workload/trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace gimbal::workload {

Trace ParseTrace(const std::string& text) {
  Trace out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    std::string type;
    long long at = 0, offset = 0, length = 0;
    if (!(ls >> at >> type >> offset >> length)) {
      throw std::runtime_error("trace parse error at line " +
                               std::to_string(lineno));
    }
    if (type != "R" && type != "W") {
      throw std::runtime_error("trace: bad IO type at line " +
                               std::to_string(lineno));
    }
    if (at < 0 || offset < 0 || length <= 0) {
      throw std::runtime_error("trace: negative field at line " +
                               std::to_string(lineno));
    }
    r.at = at;
    r.type = type == "R" ? IoType::kRead : IoType::kWrite;
    r.offset = static_cast<uint64_t>(offset);
    r.length = static_cast<uint32_t>(length);
    int prio;
    if (ls >> prio && prio >= 0 && prio < kNumPriorities) {
      r.priority = static_cast<IoPriority>(prio);
    }
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.at < b.at;
                   });
  return out;
}

Trace GenerateBurstyTrace(const BurstySpec& spec) {
  Trace out;
  Rng rng(spec.seed);
  const uint64_t slots = spec.region_bytes / spec.io_bytes;
  Tick t = 0;
  while (t < spec.total) {
    Tick burst_end = std::min<Tick>(t + spec.burst_duration, spec.total);
    Tick at = t;
    while (at < burst_end) {
      TraceRecord r;
      r.at = at;
      r.type = rng.NextBool(spec.read_ratio) ? IoType::kRead : IoType::kWrite;
      r.offset = rng.NextBounded(slots) * spec.io_bytes;
      r.length = spec.io_bytes;
      out.push_back(r);
      at += static_cast<Tick>(
                rng.NextExponential(kNsPerSec / spec.burst_iops)) +
            1;
    }
    t = burst_end + spec.idle_duration;
  }
  return out;
}

TraceWorker::TraceWorker(sim::Simulator& sim, fabric::Initiator& initiator,
                         Trace trace, bool loop)
    : sim_(sim), initiator_(initiator), trace_(std::move(trace)),
      loop_(loop) {}

void TraceWorker::Start() {
  if (running_ || trace_.empty()) return;
  running_ = true;
  started_ = true;
  epoch_ = sim_.now();
  cursor_ = 0;
  ScheduleNext();
}

void TraceWorker::ScheduleNext() {
  if (!running_) return;
  if (cursor_ >= trace_.size()) {
    if (!loop_) {
      running_ = false;
      return;
    }
    epoch_ = sim_.now();
    cursor_ = 0;
  }
  const TraceRecord& r = trace_[cursor_];
  Tick when = epoch_ + r.at;
  Tick delay = when > sim_.now() ? when - sim_.now() : 0;
  sim_.After(delay, [this]() {
    if (!running_) return;
    const TraceRecord& rec = trace_[cursor_++];
    ++issued_;
    initiator_.Submit(rec.type, rec.offset, rec.length, rec.priority,
                      [this](const IoCompletion& cpl, Tick e2e) {
                        if (!cpl.ok()) {
                          ++stats_.failed_ios;
                          return;
                        }
                        if (cpl.type == IoType::kRead) {
                          stats_.read_bytes += cpl.length;
                          ++stats_.read_ios;
                          stats_.read_latency.Record(e2e);
                        } else {
                          stats_.write_bytes += cpl.length;
                          ++stats_.write_ios;
                          stats_.write_latency.Record(e2e);
                        }
                      });
    ScheduleNext();
  });
}

}  // namespace gimbal::workload
