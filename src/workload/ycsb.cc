#include "workload/ycsb.h"

namespace gimbal::workload {

const char* ToString(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA: return "YCSB-A";
    case YcsbWorkload::kB: return "YCSB-B";
    case YcsbWorkload::kC: return "YCSB-C";
    case YcsbWorkload::kD: return "YCSB-D";
    case YcsbWorkload::kE: return "YCSB-E";
    case YcsbWorkload::kF: return "YCSB-F";
  }
  return "?";
}

YcsbGenerator::YcsbGenerator(YcsbSpec spec)
    : spec_(spec), rng_(spec.seed), record_count_(spec.record_count) {
  zipf_domain_ = record_count_;
  zipf_ = std::make_unique<ScrambledZipfian>(zipf_domain_, spec_.zipf_theta);
  latest_skew_ =
      std::make_unique<ZipfianGenerator>(zipf_domain_, spec_.zipf_theta);
}

uint64_t YcsbGenerator::NextZipfKey() {
  // Rebuild the generator when inserts have grown the space materially
  // (zeta recomputation is costly, so amortize it).
  if (record_count_ > zipf_domain_ + zipf_domain_ / 8) {
    zipf_domain_ = record_count_;
    zipf_ = std::make_unique<ScrambledZipfian>(zipf_domain_, spec_.zipf_theta);
  }
  uint64_t k = zipf_->Next(rng_);
  return k % record_count_;
}

uint64_t YcsbGenerator::NextLatestKey() {
  // "latest": rank-0 of the Zipfian maps to the most recent insert.
  uint64_t back = latest_skew_->Next(rng_) % record_count_;
  return record_count_ - 1 - back;
}

YcsbGenerator::Op YcsbGenerator::Next() {
  double p = rng_.NextDouble();
  switch (spec_.workload) {
    case YcsbWorkload::kA:
      return p < 0.5 ? Op{YcsbOp::kRead, NextZipfKey()}
                     : Op{YcsbOp::kUpdate, NextZipfKey()};
    case YcsbWorkload::kB:
      return p < 0.95 ? Op{YcsbOp::kRead, NextZipfKey()}
                      : Op{YcsbOp::kUpdate, NextZipfKey()};
    case YcsbWorkload::kC:
      return Op{YcsbOp::kRead, NextZipfKey()};
    case YcsbWorkload::kD:
      if (p < 0.95) return Op{YcsbOp::kRead, NextLatestKey()};
      return Op{YcsbOp::kInsert, record_count_++};
    case YcsbWorkload::kE:
      if (p < 0.95) {
        Op op{YcsbOp::kScan, NextZipfKey()};
        op.scan_length =
            static_cast<uint32_t>(rng_.NextBounded(100)) + 1;
        return op;
      }
      return Op{YcsbOp::kInsert, record_count_++};
    case YcsbWorkload::kF:
      return p < 0.5 ? Op{YcsbOp::kRead, NextZipfKey()}
                     : Op{YcsbOp::kReadModifyWrite, NextZipfKey()};
  }
  return Op{YcsbOp::kRead, 0};
}

}  // namespace gimbal::workload
