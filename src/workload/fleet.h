// Tenant-scale open-loop traffic engine (ROADMAP item 3).
//
// Drives a large population of short-lived open-loop sessions — up to and
// beyond 100k concurrently — through a Testbed. Each live session is one
// seat: a fresh tenant id, a caller-owned Initiator (capsule connect, so
// mid-run bring-up is shard-safe), and an OpenLoopWorker whose offered
// rate comes from a heavy-tailed RatePlan (a handful of seats carry most
// of the load) modulated by a shared ArrivalSpec (burst storms, diurnal
// swing).
//
// Churn: with session_lifetime_mean > 0 every session lives an
// exponential lifetime, disconnects gracefully, and its seat immediately
// starts a replacement under a brand-new tenant id. A retired session
// moves to the graveyard until its last completion drains (the fabric may
// still deliver completions to its sink), then its memory is reclaimed by
// the periodic sweep — so steady-state memory is O(seats + draining), not
// O(sessions ever).
//
// Every session's completions feed the SloTracker (obs/slo.h); call
// Stop(), run the sim to idle, then ExportSlo() into a registry.
//
// All fleet activity — stagger timers, lifetime timers, RNG draws, the
// sweep — executes on the testbed's client-domain simulator (shard 0), so
// a sharded engine replays the exact same schedule at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/slo.h"
#include "workload/arrivals.h"
#include "workload/openloop.h"
#include "workload/runner.h"

namespace gimbal::workload {

struct FleetSpec {
  uint64_t sessions = 1000;     // concurrent seats
  RatePlan rates;               // per-seat offered rate (rank = seat)
  ArrivalSpec arrival;          // shared modulation (burst/diurnal)
  double read_ratio = 1.0;
  uint32_t io_bytes = 4096;
  uint32_t max_outstanding = 64;  // per session; beyond it arrivals shed
  // Exponential mean session lifetime; 0 = sessions live forever.
  Tick session_lifetime_mean = 0;
  // Bring-up is staggered uniformly over this span (a 100k-timer stampede
  // at t=0 is legal but pointless).
  Tick rampup = Milliseconds(1);
  uint64_t seed = 1;
  obs::SloSpec slo;             // latency objectives; default disabled
};

class OpenLoopFleet {
 public:
  // Sessions round-robin over the testbed's pipelines. The fleet must be
  // destroyed before the testbed (declare it after).
  OpenLoopFleet(Testbed& bed, FleetSpec spec);
  ~OpenLoopFleet();

  // Schedule the staggered bring-up; idempotent.
  void Start();

  // Retire every session (graceful disconnect, no replacements). Run the
  // sim to idle afterwards, then the graveyard drains to empty.
  void Stop();

  obs::SloTracker& slo() { return slo_; }
  // FinalizeWindows + Export into `reg` (call once, after the drain).
  void ExportSlo(obs::MetricsRegistry& reg);

  uint64_t connects() const { return connects_; }
  uint64_t disconnects() const { return disconnects_; }
  size_t active_sessions() const { return active_; }
  size_t draining_sessions() const { return graveyard_.size(); }

  // Cumulative stats over every session, live and dead. Shed arrivals
  // (worker hit max_outstanding) are in `dropped`.
  struct Totals {
    WorkerStats stats;
    uint64_t dropped = 0;
  };
  Totals TotalStats() const;

  // Reclaim graveyard sessions whose initiators have fully drained;
  // returns the number still draining. Runs automatically on a timer
  // while anything is parting; exposed for tests to assert emptiness.
  size_t SweepGraveyard();

 private:
  struct Session {
    std::unique_ptr<fabric::Initiator> init;
    std::unique_ptr<OpenLoopWorker> worker;
    sim::TimerHandle lifetime;
  };

  void StartSession(uint32_t seat);
  void EndSession(uint32_t seat, bool replace);
  void Retire(std::unique_ptr<Session> s);
  void ArmSweep();

  Testbed& bed_;
  FleetSpec spec_;
  Rng rng_;
  obs::SloTracker slo_;
  std::vector<std::unique_ptr<Session>> seats_;
  std::vector<std::unique_ptr<Session>> graveyard_;
  sim::TimerHandle sweep_timer_;
  // Stats folded out of retired sessions (live ones are summed on demand).
  WorkerStats retired_stats_;
  uint64_t retired_dropped_ = 0;
  uint64_t connects_ = 0;
  uint64_t disconnects_ = 0;
  size_t active_ = 0;
  bool started_ = false;
  bool running_ = false;
};

}  // namespace gimbal::workload
