#include "workload/fleet.h"

#include <cassert>

namespace gimbal::workload {
namespace {

// Graveyard sweep cadence. Retired sessions usually drain within a few
// round trips; 1ms keeps the parting population tiny without adding a
// measurable event-rate tax.
constexpr Tick kSweepPeriod = Milliseconds(1);

}  // namespace

OpenLoopFleet::OpenLoopFleet(Testbed& bed, FleetSpec spec)
    : bed_(bed),
      spec_(spec),
      rng_(spec.seed ^ 0xf1ee7ULL),
      slo_(spec.slo),
      seats_(spec.sessions) {
  assert(spec_.sessions > 0);
}

OpenLoopFleet::~OpenLoopFleet() {
  // Cancel every timer that captures this fleet or its workers so tearing
  // down mid-run leaves nothing dangling in the event queue. (The stagger
  // timers guard on running_ but are not individually cancellable; the
  // documented contract is to destroy the fleet only once the sim is idle
  // or will not run again — the Testbed-after-fleet declaration order
  // gives exactly that.)
  running_ = false;
  sweep_timer_.Cancel();
  for (auto& s : seats_) {
    if (s == nullptr) continue;
    s->lifetime.Cancel();
    s->worker->Stop();
  }
  for (auto& s : graveyard_) s->worker->Stop();
}

void OpenLoopFleet::Start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  // Stagger bring-up uniformly over the rampup span. Seat k's connect
  // time is deterministic; the RNG draws for its rate and lifetime happen
  // inside the timer, in shard-0 event order.
  const uint64_t n = spec_.sessions;
  for (uint64_t k = 0; k < n; ++k) {
    const Tick at = spec_.rampup > 0
                        ? static_cast<Tick>((static_cast<unsigned __int128>(
                                                 spec_.rampup) *
                                             k) /
                                            n) +
                              1
                        : 1;
    const uint32_t seat = static_cast<uint32_t>(k);
    bed_.sim().After(at, [this, seat]() {
      if (running_) StartSession(seat);
    });
  }
}

void OpenLoopFleet::StartSession(uint32_t seat) {
  assert(seats_[seat] == nullptr);
  const TenantId tenant = bed_.AllocateTenantId();
  const int ssd =
      static_cast<int>(seat % static_cast<uint32_t>(bed_.config().num_ssds));
  auto s = std::make_unique<Session>();
  s->init =
      bed_.MakeInitiator(ssd, tenant, fabric::ConnectMode::kCapsule);

  OpenLoopSpec ws;
  // Rank = seat: the heavy hitters of a Zipf/Pareto plan live in the low
  // seats, and a replacement session inherits its seat's rank so the
  // offered-load mix is stationary under churn.
  ws.offered_iops =
      SessionRate(spec_.rates, seat, spec_.sessions, rng_.NextDouble());
  ws.read_ratio = spec_.read_ratio;
  ws.io_bytes = spec_.io_bytes;
  ws.max_outstanding = spec_.max_outstanding;
  ws.region_bytes = bed_.device(ssd).capacity_bytes();
  ws.seed = spec_.seed ^ (static_cast<uint64_t>(tenant) * 0x9e3779b97f4a7c15ULL);
  ws.arrival = spec_.arrival;
  s->worker = std::make_unique<OpenLoopWorker>(bed_.sim(), *s->init, ws);
  s->worker->set_sample_fn(
      [this](TenantId t, const IoCompletion& cpl, Tick e2e) {
        if (cpl.ok()) {
          slo_.Record(t, cpl.type == IoType::kWrite, e2e, bed_.sim().now());
        }
      });
  s->worker->Start();

  if (spec_.session_lifetime_mean > 0) {
    const Tick life =
        static_cast<Tick>(rng_.NextExponential(
            static_cast<double>(spec_.session_lifetime_mean))) +
        1;
    s->lifetime = bed_.sim().After(life, [this, seat]() {
      EndSession(seat, /*replace=*/true);
    });
  }
  seats_[seat] = std::move(s);
  ++active_;
  ++connects_;
}

void OpenLoopFleet::EndSession(uint32_t seat, bool replace) {
  std::unique_ptr<Session> s = std::move(seats_[seat]);
  if (s == nullptr) return;
  --active_;
  ++disconnects_;
  s->lifetime.Cancel();
  Retire(std::move(s));
  if (replace && running_) StartSession(seat);
}

void OpenLoopFleet::Retire(std::unique_ptr<Session> s) {
  s->worker->Stop();
  slo_.OnDisconnect(s->init->tenant());
  // Shutdown aborts locally-queued IOs synchronously (their failed-IO
  // callbacks run here), so fold stats afterwards; the graveyard then
  // only waits for the fabric to return the issued in-flight tail.
  s->init->Shutdown();
  const WorkerStats& ws = s->worker->stats();
  retired_stats_.read_bytes += ws.read_bytes;
  retired_stats_.write_bytes += ws.write_bytes;
  retired_stats_.read_ios += ws.read_ios;
  retired_stats_.write_ios += ws.write_ios;
  retired_stats_.failed_ios += ws.failed_ios;
  retired_stats_.read_latency.Merge(ws.read_latency);
  retired_stats_.write_latency.Merge(ws.write_latency);
  retired_dropped_ += s->worker->dropped();
  graveyard_.push_back(std::move(s));
  ArmSweep();
}

void OpenLoopFleet::ArmSweep() {
  if (sweep_timer_.active() || graveyard_.empty()) return;
  sweep_timer_ = bed_.sim().After(kSweepPeriod, [this]() {
    SweepGraveyard();
    ArmSweep();
  });
}

size_t OpenLoopFleet::SweepGraveyard() {
  // A retired initiator is reclaimable once nothing can call back into
  // it: no queued IOs (Shutdown failed them synchronously), no issued IOs
  // still owed a completion by the fabric, and no control capsules still
  // crossing it (their delivery callbacks capture the initiator — under a
  // churn storm the capsule backlog alone can exceed a sweep period).
  // Fresh tenant ids mean a late completion can never be misrouted to a
  // successor session — the target drops it as orphaned instead.
  size_t kept = 0;
  for (auto& s : graveyard_) {
    if (s->init->inflight() != 0 || s->init->queued() != 0 ||
        s->init->control_inflight() != 0) {
      graveyard_[kept++] = std::move(s);
    }
  }
  graveyard_.resize(kept);
  return kept;
}

void OpenLoopFleet::Stop() {
  running_ = false;
  for (uint32_t seat = 0; seat < seats_.size(); ++seat) {
    EndSession(seat, /*replace=*/false);
  }
}

void OpenLoopFleet::ExportSlo(obs::MetricsRegistry& reg) {
  slo_.FinalizeWindows();
  slo_.Export(reg);
}

OpenLoopFleet::Totals OpenLoopFleet::TotalStats() const {
  Totals t;
  t.stats = retired_stats_;
  t.dropped = retired_dropped_;
  for (const auto& s : seats_) {
    if (s == nullptr) continue;
    const WorkerStats& ws = s->worker->stats();
    t.stats.read_bytes += ws.read_bytes;
    t.stats.write_bytes += ws.write_bytes;
    t.stats.read_ios += ws.read_ios;
    t.stats.write_ios += ws.write_ios;
    t.stats.failed_ios += ws.failed_ios;
    t.stats.read_latency.Merge(ws.read_latency);
    t.stats.write_latency.Merge(ws.write_latency);
    t.dropped += s->worker->dropped();
  }
  return t;
}

}  // namespace gimbal::workload
