#include "workload/report.h"

#include <algorithm>
#include <cstdarg>

namespace gimbal::workload {

Table& Table::Columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::Row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::MBps(double bytes_per_sec) {
  return Num(bytes_per_sec / (1024.0 * 1024.0), 1);
}

std::string Table::Us(double ns) { return Num(ns / 1000.0, 1); }

std::string Table::Kiops(double ios_per_sec) {
  return Num(ios_per_sec / 1000.0, 1);
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::printf("\n-- %s\n", title_.c_str());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%s  ", std::string(widths[i], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }
}

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace gimbal::workload
