#include "workload/openloop.h"

#include <cassert>

namespace gimbal::workload {

OpenLoopWorker::OpenLoopWorker(sim::Simulator& sim,
                               fabric::Initiator& initiator,
                               OpenLoopSpec spec)
    : sim_(sim), initiator_(initiator), spec_(spec), rng_(spec.seed) {
  assert(spec_.region_bytes >= spec_.io_bytes && "region not set");
  assert(spec_.offered_iops > 0);
  seq_cursor_ = rng_.NextBounded(spec_.region_bytes / spec_.io_bytes);
}

void OpenLoopWorker::Start() {
  if (running_) return;
  running_ = true;
  ScheduleArrival();
}

void OpenLoopWorker::ScheduleArrival() {
  double gap_ns = rng_.NextExponential(kNsPerSec / spec_.offered_iops);
  sim_.After(static_cast<Tick>(gap_ns) + 1, [this]() {
    if (!running_) return;
    Arrive();
    ScheduleArrival();
  });
}

void OpenLoopWorker::Arrive() {
  if (outstanding_ >= spec_.max_outstanding) {
    // The system is hopelessly behind the offered load; shedding arrivals
    // keeps memory bounded (the latency histogram already shows the
    // explosion by this point).
    ++dropped_;
    return;
  }
  IoType type =
      rng_.NextBool(spec_.read_ratio) ? IoType::kRead : IoType::kWrite;
  const uint64_t slots = spec_.region_bytes / spec_.io_bytes;
  uint64_t slot =
      spec_.sequential ? (seq_cursor_++ % slots) : rng_.NextBounded(slots);
  ++outstanding_;
  initiator_.Submit(
      type, spec_.region_offset + slot * spec_.io_bytes, spec_.io_bytes,
      spec_.priority, [this](const IoCompletion& cpl, Tick e2e) {
        --outstanding_;
        if (!cpl.ok()) {
          ++stats_.failed_ios;
          return;
        }
        if (cpl.type == IoType::kRead) {
          stats_.read_bytes += cpl.length;
          ++stats_.read_ios;
          stats_.read_latency.Record(e2e);
        } else {
          stats_.write_bytes += cpl.length;
          ++stats_.write_ios;
          stats_.write_latency.Record(e2e);
        }
      });
}

}  // namespace gimbal::workload
