#include "workload/openloop.h"

#include <cassert>

namespace gimbal::workload {

OpenLoopWorker::OpenLoopWorker(sim::Simulator& sim,
                               fabric::Initiator& initiator,
                               OpenLoopSpec spec)
    : sim_(sim),
      initiator_(initiator),
      spec_(spec),
      rng_(spec.seed),
      // The MMPP dwell machine draws from its own stream so burst phase is
      // a property of the seed, not of how many IOs happened to arrive.
      arrival_(spec.arrival, spec.seed ^ 0x6275727374ULL) {
  assert(spec_.region_bytes >= spec_.io_bytes && "region not set");
  assert(spec_.offered_iops > 0);
  seq_cursor_ = rng_.NextBounded(spec_.region_bytes / spec_.io_bytes);
}

void OpenLoopWorker::Start() {
  if (running_) return;
  running_ = true;
  ScheduleArrival();
}

void OpenLoopWorker::ScheduleArrival() {
  const Tick gap = arrival_.NextGap(spec_.offered_iops, sim_.now(), rng_);
  arrival_timer_ = sim_.After(gap, [this]() {
    if (!running_) return;
    Arrive();
    ScheduleArrival();
  });
}

void OpenLoopWorker::Arrive() {
  if (outstanding_ >= spec_.max_outstanding) {
    // The system is hopelessly behind the offered load; shedding arrivals
    // keeps memory bounded (the latency histogram already shows the
    // explosion by this point).
    ++dropped_;
    return;
  }
  IoType type =
      rng_.NextBool(spec_.read_ratio) ? IoType::kRead : IoType::kWrite;
  const uint64_t slots = spec_.region_bytes / spec_.io_bytes;
  uint64_t slot =
      spec_.sequential ? (seq_cursor_++ % slots) : rng_.NextBounded(slots);
  ++outstanding_;
  initiator_.Submit(
      type, spec_.region_offset + slot * spec_.io_bytes, spec_.io_bytes,
      spec_.priority, [this](const IoCompletion& cpl, Tick e2e) {
        --outstanding_;
        if (!cpl.ok()) {
          ++stats_.failed_ios;
        } else if (cpl.type == IoType::kRead) {
          stats_.read_bytes += cpl.length;
          ++stats_.read_ios;
          stats_.read_latency.Record(e2e);
        } else {
          stats_.write_bytes += cpl.length;
          ++stats_.write_ios;
          stats_.write_latency.Record(e2e);
        }
        if (sample_) sample_(cpl.tenant, cpl, e2e);
      });
}

}  // namespace gimbal::workload
