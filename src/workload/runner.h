// Experiment harness: wires a complete disaggregated-storage testbed —
// simulator, network, target node, SSDs (conditioned clean/fragmented),
// one IoPolicy per SSD for the chosen scheme, initiators and fio workers —
// mirroring the §5.1 methodology so each bench stays a thin declaration of
// its workload matrix.
//
// Sharded execution (docs/SIMULATOR.md): a testbed with more than one SSD
// and a positive fabric base latency is built on a ShardedEngine — shard 0
// hosts the client domain (initiators, workers, crash timers), and each
// used target core hosts its pipelines, SSD models and fault state on its
// own shard. Cross-shard traffic flows only through the Network, which
// buffers sends per shard and replays them in one canonical order at every
// epoch barrier. TestbedConfig::threads sizes the worker pool; the
// schedule — and so every trace digest and golden figure — is bit-identical
// for any thread count, because threads only execute independently-claimed
// shards within conservative-lookahead epochs. Single-SSD (or zero-latency)
// testbeds keep the exact pre-sharding single-simulator path.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/fcfs_policy.h"
#include "baselines/flashfq_policy.h"
#include "baselines/parda_policy.h"
#include "baselines/reflex_policy.h"
#include "baselines/timeslice_policy.h"
#include "check/invariants.h"
#include "core/gimbal_switch.h"
#include "fabric/initiator.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "fault/fault.h"
#include "fault/faulty_device.h"
#include "obs/obs.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "ssd/null_device.h"
#include "ssd/ssd.h"
#include "workload/fio.h"

namespace gimbal::workload {

// The four comparison schemes of §5.1 plus the unmodified target.
enum class Scheme { kVanilla, kReflex, kParda, kFlashFq, kGimbal, kTimeslice };

const char* ToString(Scheme s);
fabric::ThrottleMode ThrottleFor(Scheme s);
inline const Scheme kAllSchemes[] = {Scheme::kReflex, Scheme::kFlashFq,
                                     Scheme::kParda, Scheme::kGimbal};

enum class SsdCondition { kClean, kFragmented };

struct TestbedConfig {
  int num_ssds = 1;
  // --- Rack topology (docs/SIMULATOR.md) -----------------------------------
  // Target nodes behind a shared ToR uplink. 1 — the default — is the
  // single-JBOF testbed, event-for-event identical to the pre-rack code.
  // With nodes > 1, num_ssds must divide evenly: SSD i lives on node
  // i / (num_ssds / nodes), each node gets its own Target (cfg.target.cores
  // are per node), fabric messages serialize on the shared uplink and the
  // node's access link, and replica placement / whole-node faults become
  // node-aware. Shard topology generalizes to (node, core): one shard per
  // used core per node, so rack runs stay bit-identical at any thread
  // count.
  int nodes = 1;
  // Shared ToR uplink bandwidth (bytes/sec); 0 = same as net.bandwidth_bps.
  double uplink_bps = 0;
  ssd::SsdConfig ssd = {};
  SsdCondition condition = SsdCondition::kClean;
  fabric::TargetConfig target = fabric::TargetConfig::SmartNicLike();
  fabric::NetworkConfig net = {};
  Scheme scheme = Scheme::kGimbal;
  core::GimbalParams gimbal = {};
  baselines::ReflexParams reflex = {};
  baselines::PardaParams parda = {};
  baselines::FlashFqParams flashfq = {};
  baselines::TimesliceParams timeslice = {};
  bool use_null_device = false;  // Table 1b's NULL bdev mode

  // Worker threads for the sharded engine (see file header). 1 — the
  // default — runs the sharded schedule on the calling thread alone; N > 1
  // adds N-1 workers. Has no effect on single-SSD testbeds and NO effect
  // on results at any value: determinism is a hard contract, enforced by
  // the golden-figure suite at several thread counts.
  int threads = 1;

  // Fault injection (docs/FAULTS.md). A non-empty plan wraps every SSD in
  // a FaultyDevice, routes fabric messages through the injector when link
  // flaps are scheduled, and drives each pipeline's policy with its SSD's
  // health transitions. `retry` configures the initiators' client-side
  // fault tolerance; `target.session_timeout` the crash reaper. All
  // default off: a fault-free testbed is event-for-event identical to one
  // built before this subsystem existed.
  fault::FaultPlan faults = {};
  uint64_t fault_seed = 1;
  fabric::RetryParams retry = {};

  // Force a full synchronization barrier per uniform T + W - 1 epoch
  // instead of coarsening single-shard stretches (docs/SIMULATOR.md).
  // Results are identical either way — the determinism suite runs both and
  // compares digests; this knob exists for those tests and for perf A/Bs.
  bool uniform_epochs = false;

  // Event-queue engine under the simulator(s). The timing wheel is the
  // production default; the reference heap is kept as an ordering oracle so
  // determinism tests can replay the same testbed on both engines and
  // compare trace digests bit-for-bit (docs/SIMULATOR.md).
  sim::EventQueue::Impl queue_impl = sim::EventQueue::Impl::kTimingWheel;

  // Optional metrics/trace sinks (see docs/OBSERVABILITY.md). When set, the
  // testbed attaches them to the target, every policy and every SSD, and
  // labels everything it emits with `run_label` (defaults to the scheme
  // name). Run(warmup, ...) resets this run's counters at the end of
  // warmup so metric totals cover exactly the measurement window. Under
  // sharding each shard records into a private Observability; tracers are
  // merged into this one in canonical (ts, shard) order at every epoch
  // barrier, metrics at the end of every Run() and at teardown.
  obs::Observability* obs = nullptr;
  std::string run_label;

  // Online invariant checker (docs/TESTING.md). When null the testbed owns
  // a fail-fast checker of its own, so every testbed — in tests and quick
  // figure runs alike — is verified at every transition. Pass an external
  // checker to inspect violations without aborting (fail_fast=false).
  check::InvariantChecker* check = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg);
  ~Testbed();

  // The client-domain simulator (shard 0 under sharding). Run()/RunUntil()
  // on it drive the whole engine, so call sites never care which mode the
  // testbed was built in.
  sim::Simulator& sim() { return *sim_; }
  // The engine behind a sharded testbed; null in single-simulator mode.
  sim::ShardedEngine* engine() { return engine_.get(); }
  fabric::Network& net() { return *net_; }
  // Node 0's target (the whole testbed on a single-node bed).
  fabric::Target& target() { return *targets_[0]; }
  // The target node that owns pipeline/SSD `ssd` (global index).
  fabric::Target& target_of(int ssd) {
    return *targets_[static_cast<size_t>(node_of(ssd))];
  }
  int nodes() const { return cfg_.nodes; }
  int node_of(int ssd) const { return ssd / ssds_per_node_; }
  ssd::BlockDevice& device(int i) { return *devices_[i]; }
  // The full SSD model behind pipeline i (nullptr in NULL-device mode).
  ssd::Ssd* ssd(int i) { return ssds_[i]; }
  core::IoPolicy& policy(int i) { return target_of(i).policy(i); }
  // The Gimbal switch behind pipeline i, or nullptr for other schemes.
  core::GimbalSwitch* gimbal_switch(int i);
  // The fault injector driving this testbed (always present; inert when
  // the plan is empty and no crash is scheduled).
  fault::FaultInjector& faults() { return *faults_; }
  // The invariant checker attached to this testbed (config-supplied or the
  // testbed's own fail-fast instance).
  check::InvariantChecker& checker() { return *check_; }
  // Observability for client-domain components (shard 0 under sharding,
  // the session instance otherwise); null when the run is unobserved.
  obs::Observability* client_obs() {
    return shard_obs_.empty() ? cfg_.obs : shard_obs_[0].get();
  }
  const TestbedConfig& config() const { return cfg_; }

  // Publish shard-local tracer events and metric totals into the session
  // Observability (cfg.obs). Run() does this at the end of every window;
  // call sites that drive sim().RunUntil() directly (the KV cluster, fault
  // benches) call it before reading session-registry series mid-run.
  // No-op in single-simulator mode, where components already record into
  // cfg.obs.
  void FlushObservability() {
    PublishRackMetrics();
    MergeShardTracers();
    FlushShardMetrics();
  }

  // Create a new tenant attached to SSD `ssd_index`; throttle mode follows
  // the scheme (credits for Gimbal, latency window for Parda) unless
  // overridden (the Fig 13 vanilla/+FC ablation disables the credit
  // throttle while keeping the Gimbal switch at the target).
  fabric::Initiator& AddInitiator(
      int ssd_index,
      std::optional<fabric::ThrottleMode> throttle = std::nullopt);

  // Allocate a fresh tenant id (monotonic, never recycled: a churned
  // session's id stays unique so ledgers, traces and late completions are
  // never ambiguous between two lives of one slot).
  TenantId AllocateTenantId() { return next_tenant_++; }

  // Construct a fully-attached initiator owned by the *caller*. The
  // open-loop fleet churns thousands of short-lived sessions and destroys
  // each after drain; parking them in the testbed's own vector would grow
  // it without bound. kCapsule connect makes mid-run bring-up shard-safe
  // (registration rides the fabric in FIFO order ahead of the commands).
  std::unique_ptr<fabric::Initiator> MakeInitiator(
      int ssd_index, TenantId tenant, fabric::ConnectMode connect,
      std::optional<fabric::ThrottleMode> throttle = std::nullopt);

  // Convenience: new tenant + fio worker on it. An unset region defaults
  // to the whole device.
  FioWorker& AddWorker(FioSpec spec, int ssd_index = 0);

  std::vector<std::unique_ptr<FioWorker>>& workers() { return workers_; }
  std::vector<std::unique_ptr<fabric::Initiator>>& initiators() {
    return initiators_;
  }

  // Start every worker, warm up, reset stats, then run the measurement
  // window. Reported stats cover only the measurement window.
  void Run(Tick warmup, Tick measure);

  Tick measured() const { return measured_; }

 private:
  std::unique_ptr<core::IoPolicy> MakePolicy(sim::Simulator& psim,
                                             ssd::BlockDevice& dev);
  // The shard pipeline/SSD i executes on: (node, core) topology — shard
  // 1 + node * used_cores_ + (local index % used_cores_), which reduces to
  // the historical 1 + (i % used_cores_) on a single node.
  int ShardOf(int i) const;
  // The simulator pipeline/SSD i executes on (sim_ in plain mode).
  sim::Simulator& SsdSim(int i);
  // The observability pipeline/SSD i records into (cfg.obs in plain mode).
  obs::Observability* SsdObs(int i);
  // Barrier work: replay buffered fabric sends (and, once, bring shard
  // tracers up after a late session Enable). Trace stitching and metric
  // merging are deliberately NOT here — they run per Run, not per epoch.
  void OnEpochBarrier();
  void PropagateTracerEnable();
  // Append one row of trace buffer sizes (session tracer first, then each
  // shard) delimiting this barrier's batch (skipped when no shard recorded
  // anything since the previous row).
  void RecordTraceMarks();
  void MergeShardTracers();
  // Overwrite the shard.* engine gauges (epochs, idle wakeups).
  void PublishEngineMetrics();
  // Fold shard metric registries into the session registry (delta since
  // the previous flush; gauges overwrite idempotently).
  void FlushShardMetrics();
  // Overwrite the rack.* gauges from the Network's totals (rack mode +
  // observed only; gauges, so repeated publishes are idempotent).
  void PublishRackMetrics();

  TestbedConfig cfg_;
  // Destruction order matters, bottom-up at the `}`: components hold
  // references into the shard simulators, so the engine is declared first
  // (destroyed last), and the checker before everything it observes.
  std::unique_ptr<sim::ShardedEngine> engine_;  // sharded mode only
  std::unique_ptr<sim::Simulator> owned_sim_;   // plain mode only
  sim::Simulator* sim_ = nullptr;               // client-domain simulator
  int used_cores_ = 0;     // per-node target cores that host pipelines
  int ssds_per_node_ = 1;  // num_ssds / nodes
  // Per-shard observability (index = shard id), sharded + observed only.
  std::vector<std::unique_ptr<obs::Observability>> shard_obs_;
  std::vector<obs::EventTracer::Event> merge_buf_;
  // Flat (rows x (1 + num_shards)) per-barrier trace buffer sizes —
  // session tracer then each shard — the batch boundaries and splice
  // points MergeShardTracers replays at the end of the run.
  std::vector<size_t> trace_marks_;
  size_t last_mark_total_ = 0;
  bool tracers_live_ = false;  // shard tracers track the session Enable
  // Owned checker when cfg.check is null; declared before the components
  // it observes so it outlives their destructors.
  std::unique_ptr<check::InvariantChecker> owned_check_;
  check::InvariantChecker* check_ = nullptr;
  std::unique_ptr<fabric::Network> net_;
  std::unique_ptr<fault::FaultInjector> faults_;
  // One target per node (a single entry on the classic single-node bed);
  // node n's target hands out global pipeline ids via its pipeline base.
  std::vector<std::unique_ptr<fabric::Target>> targets_;
  std::vector<std::unique_ptr<ssd::BlockDevice>> devices_;
  std::vector<ssd::Ssd*> ssds_;
  std::vector<std::unique_ptr<fabric::Initiator>> initiators_;
  std::vector<std::unique_ptr<FioWorker>> workers_;
  TenantId next_tenant_ = 1;
  Tick measured_ = 0;
};

// Aggregate bandwidth (bytes/sec) the workload class achieves when it has
// the SSD to itself — the paper's "standalone benchmark" (§5.2 runs 16
// workers of the same shape) and the denominator of the f-Util metric.
// `workers` instances of `spec` run on a fresh testbed.
double StandaloneBandwidth(const TestbedConfig& cfg, const FioSpec& spec,
                           Tick warmup = Milliseconds(300),
                           Tick measure = Milliseconds(500),
                           int workers = 16);

// f-Util (§5.1): per-worker bandwidth over its fair share of standalone.
inline double FUtil(double worker_bps, double standalone_bps, int workers) {
  if (standalone_bps <= 0) return 0;
  return worker_bps / (standalone_bps / workers);
}

}  // namespace gimbal::workload
