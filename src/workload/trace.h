// Trace-driven workload replay.
//
// A trace is a time-ordered list of IO records; the TraceWorker issues
// each record at its timestamp (open-loop), optionally looping the trace.
// Generators produce common synthetic traces — the bursty ON/OFF pattern
// production storage sees — so experiments are reproducible without
// external trace files, and a tiny text parser loads real traces
// ("<ns> <R|W> <offset> <bytes> [prio]" per line).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "fabric/initiator.h"
#include "workload/fio.h"

namespace gimbal::workload {

struct TraceRecord {
  Tick at = 0;  // issue time relative to trace start
  IoType type = IoType::kRead;
  uint64_t offset = 0;
  uint32_t length = 4096;
  IoPriority priority = IoPriority::kNormal;
};

using Trace = std::vector<TraceRecord>;

// Parse the text format above; returns records sorted by time. Lines
// starting with '#' and blank lines are skipped. Throws std::runtime_error
// on malformed input.
Trace ParseTrace(const std::string& text);

// ON/OFF bursty generator: alternating busy bursts (Poisson arrivals at
// `burst_iops`) and idle gaps, the pattern §5.5's dynamic experiment
// approximates with rate caps.
struct BurstySpec {
  double burst_iops = 50'000;
  Tick burst_duration = Milliseconds(20);
  Tick idle_duration = Milliseconds(80);
  Tick total = Seconds(1);
  double read_ratio = 1.0;
  uint32_t io_bytes = 4096;
  uint64_t region_bytes = 0;  // required
  uint64_t seed = 1;
};
Trace GenerateBurstyTrace(const BurstySpec& spec);

class TraceWorker {
 public:
  TraceWorker(sim::Simulator& sim, fabric::Initiator& initiator, Trace trace,
              bool loop = false);

  void Start();
  void Stop() { running_ = false; }

  WorkerStats& stats() { return stats_; }
  uint64_t issued() const { return issued_; }
  bool finished() const { return !running_ && started_; }

 private:
  void ScheduleNext();

  sim::Simulator& sim_;
  fabric::Initiator& initiator_;
  Trace trace_;
  bool loop_;
  bool running_ = false;
  bool started_ = false;
  size_t cursor_ = 0;
  Tick epoch_ = 0;  // sim time corresponding to trace time 0
  uint64_t issued_ = 0;
  WorkerStats stats_;
};

}  // namespace gimbal::workload
