#include "workload/tpcc.h"

namespace gimbal::workload {

const char* ToString(TpccTxnType t) {
  switch (t) {
    case TpccTxnType::kNewOrder:
      return "new_order";
    case TpccTxnType::kPayment:
      return "payment";
  }
  return "?";
}

TpccGenerator::TpccGenerator(TpccSpec spec)
    : spec_(spec), rng_(spec.seed * 0x9E3779B97F4A7C15ull + 0x243F6A8885A308D3ull) {
  if (spec_.warehouses == 0) spec_.warehouses = 1;
  if (spec_.warehouses > 1) {
    wh_zipf_ = std::make_unique<ZipfianGenerator>(spec_.warehouses,
                                                  spec_.warehouse_theta);
  }
}

uint64_t TpccGenerator::PickWarehouse() {
  if (!wh_zipf_) return 0;
  return wh_zipf_->Next(rng_);
}

TpccTxn TpccGenerator::Next() {
  TpccTxn txn;
  txn.warehouse = PickWarehouse();
  const uint64_t w = txn.warehouse;
  const uint64_t d = rng_.NextBounded(spec_.districts_per_warehouse);
  const uint64_t c = rng_.NextBounded(spec_.customers_per_district);
  // Districts/customers index within their warehouse: row = d or d * C + c.
  const uint64_t drow = d;
  const uint64_t crow = d * spec_.customers_per_district + c;

  if (rng_.NextBool(spec_.new_order_ratio)) {
    txn.type = TpccTxnType::kNewOrder;
    txn.ops.push_back({TpccKey(TpccTable::kWarehouse, w, 0), false});
    // District next-order counter: the hot S->X upgrade.
    txn.ops.push_back({TpccKey(TpccTable::kDistrict, w, drow), false});
    txn.ops.push_back({TpccKey(TpccTable::kDistrict, w, drow), true});
    txn.ops.push_back({TpccKey(TpccTable::kCustomer, w, crow), false});
    const uint64_t lines = 1 + rng_.NextBounded(spec_.max_order_lines);
    for (uint64_t l = 0; l < lines; ++l) {
      const uint64_t item = rng_.NextBounded(spec_.items);
      uint64_t stock_w = w;
      if (spec_.warehouses > 1 && rng_.NextBool(spec_.remote_item_prob)) {
        stock_w = rng_.NextBounded(spec_.warehouses);
      }
      txn.ops.push_back({TpccKey(TpccTable::kItem, 0, item), false});
      txn.ops.push_back({TpccKey(TpccTable::kStock, stock_w, item), false});
      txn.ops.push_back({TpccKey(TpccTable::kStock, stock_w, item), true});
    }
    txn.ops.push_back(
        {TpccKey(TpccTable::kOrder, w, next_order_row_++), true});
  } else {
    txn.type = TpccTxnType::kPayment;
    // Warehouse ytd: the hottest exclusive lock in the mix.
    txn.ops.push_back({TpccKey(TpccTable::kWarehouse, w, 0), false});
    txn.ops.push_back({TpccKey(TpccTable::kWarehouse, w, 0), true});
    txn.ops.push_back({TpccKey(TpccTable::kDistrict, w, drow), false});
    txn.ops.push_back({TpccKey(TpccTable::kDistrict, w, drow), true});
    txn.ops.push_back({TpccKey(TpccTable::kCustomer, w, crow), false});
    txn.ops.push_back({TpccKey(TpccTable::kCustomer, w, crow), true});
    txn.ops.push_back(
        {TpccKey(TpccTable::kHistory, w, next_order_row_++), true});
  }
  return txn;
}

}  // namespace gimbal::workload
