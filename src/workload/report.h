// Fixed-width table printing for the bench binaries, so every reproduced
// table/figure prints self-describing rows that can be diffed against the
// paper's values.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace gimbal::workload {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& Columns(std::vector<std::string> names);
  Table& Row(std::vector<std::string> cells);
  void Print() const;

  // Formatting helpers.
  static std::string Num(double v, int precision = 1);
  static std::string MBps(double bytes_per_sec);
  static std::string Us(double ns);
  static std::string Kiops(double ios_per_sec);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used by every bench binary.
void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

}  // namespace gimbal::workload
