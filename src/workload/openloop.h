// Open-loop workload driver: IOs arrive on a Poisson process at a fixed
// offered rate, independent of completions (unlike FioWorker's closed
// loop). This is the right tool for latency-vs-offered-load curves — a
// closed loop self-throttles at the knee and hides the latency explosion.
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "common/rng.h"
#include "fabric/initiator.h"
#include "workload/fio.h"

namespace gimbal::workload {

struct OpenLoopSpec {
  double offered_iops = 10'000;   // mean arrival rate
  double read_ratio = 1.0;
  uint32_t io_bytes = 4096;
  bool sequential = false;
  IoPriority priority = IoPriority::kNormal;
  uint64_t region_offset = 0;
  uint64_t region_bytes = 0;      // 0 = whole device (set by caller)
  uint32_t max_outstanding = 4096;  // sanity cap; beyond it arrivals drop
  uint64_t seed = 1;
};

class OpenLoopWorker {
 public:
  OpenLoopWorker(sim::Simulator& sim, fabric::Initiator& initiator,
                 OpenLoopSpec spec);

  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  WorkerStats& stats() { return stats_; }
  uint64_t dropped() const { return dropped_; }
  uint32_t outstanding() const { return outstanding_; }
  const OpenLoopSpec& spec() const { return spec_; }

 private:
  void ScheduleArrival();
  void Arrive();

  sim::Simulator& sim_;
  fabric::Initiator& initiator_;
  OpenLoopSpec spec_;
  Rng rng_;
  WorkerStats stats_;
  bool running_ = false;
  uint32_t outstanding_ = 0;
  uint64_t dropped_ = 0;
  uint64_t seq_cursor_ = 0;
};

}  // namespace gimbal::workload
