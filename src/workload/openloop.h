// Open-loop workload driver: IOs arrive on an arrival process at an
// offered rate independent of completions (unlike FioWorker's closed
// loop). This is the right tool for latency-vs-offered-load curves — a
// closed loop self-throttles at the knee and hides the latency explosion.
//
// The arrival process defaults to Poisson (draw-for-draw identical to the
// original generator) and can be modulated per ArrivalSpec: MMPP burst
// storms and a diurnal sinusoid, sampled exactly by thinning
// (workload/arrivals.h). Large populations of workers with heavy-tailed
// per-session rates are orchestrated by the OpenLoopFleet
// (workload/fleet.h), which owns one OpenLoopWorker per live session.
#pragma once

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "common/rng.h"
#include "fabric/initiator.h"
#include "workload/arrivals.h"
#include "workload/fio.h"

namespace gimbal::workload {

struct OpenLoopSpec {
  double offered_iops = 10'000;   // mean arrival rate
  double read_ratio = 1.0;
  uint32_t io_bytes = 4096;
  bool sequential = false;
  IoPriority priority = IoPriority::kNormal;
  uint64_t region_offset = 0;
  uint64_t region_bytes = 0;      // 0 = whole device (set by caller)
  uint32_t max_outstanding = 4096;  // sanity cap; beyond it arrivals drop
  uint64_t seed = 1;
  // Rate modulation over the base process; the default is pure Poisson.
  ArrivalSpec arrival;
};

class OpenLoopWorker {
 public:
  // Per-completion hook (fleet SLO tracking): tenant, completion,
  // client-observed e2e latency. Fires for every completion, ok or not,
  // after the worker's own stats update.
  using SampleFn =
      std::function<void(TenantId, const IoCompletion&, Tick e2e)>;

  OpenLoopWorker(sim::Simulator& sim, fabric::Initiator& initiator,
                 OpenLoopSpec spec);

  void Start();
  // Stops the arrival process and cancels the pending arrival timer, so a
  // stopped worker leaves nothing in the event queue that references it —
  // the fleet reclaims workers mid-run relying on exactly this.
  void Stop() {
    running_ = false;
    arrival_timer_.Cancel();
  }
  bool running() const { return running_; }

  void set_sample_fn(SampleFn fn) { sample_ = std::move(fn); }

  WorkerStats& stats() { return stats_; }
  uint64_t dropped() const { return dropped_; }
  uint32_t outstanding() const { return outstanding_; }
  const OpenLoopSpec& spec() const { return spec_; }

 private:
  void ScheduleArrival();
  void Arrive();

  sim::Simulator& sim_;
  fabric::Initiator& initiator_;
  OpenLoopSpec spec_;
  Rng rng_;
  ArrivalProcess arrival_;
  sim::TimerHandle arrival_timer_;
  WorkerStats stats_;
  SampleFn sample_;
  bool running_ = false;
  uint32_t outstanding_ = 0;
  uint64_t dropped_ = 0;
  uint64_t seq_cursor_ = 0;
};

}  // namespace gimbal::workload
