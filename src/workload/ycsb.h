// YCSB core-workload generators (Cooper et al., SoCC'10), used by the
// RocksDB case study (§5.6): workloads A, B, C, D and F with the paper's
// configuration (1 KiB values, Zipfian skew 0.99).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace gimbal::workload {

enum class YcsbOp { kRead, kUpdate, kInsert, kReadModifyWrite, kScan };

// A-D and F are the paper's §5.6 set; E (95% short scans / 5% inserts) is
// included as an extension now that the KV store supports range scans.
enum class YcsbWorkload { kA, kB, kC, kD, kE, kF };

const char* ToString(YcsbWorkload w);

struct YcsbSpec {
  YcsbWorkload workload = YcsbWorkload::kA;
  uint64_t record_count = 100'000;
  uint32_t value_bytes = 1024;
  double zipf_theta = 0.99;
  uint64_t seed = 1;
};

// Stateful per-client generator. Thread-free (the simulator is single
// threaded); inserts grow the keyspace, and workload D's reads follow the
// "latest" distribution over it.
class YcsbGenerator {
 public:
  explicit YcsbGenerator(YcsbSpec spec);

  struct Op {
    YcsbOp op;
    uint64_t key;
    uint32_t scan_length = 0;  // kScan only: uniform in [1, 100]
  };
  Op Next();

  uint64_t record_count() const { return record_count_; }
  const YcsbSpec& spec() const { return spec_; }

 private:
  uint64_t NextZipfKey();
  uint64_t NextLatestKey();

  YcsbSpec spec_;
  Rng rng_;
  uint64_t record_count_;
  std::unique_ptr<ScrambledZipfian> zipf_;
  std::unique_ptr<ZipfianGenerator> latest_skew_;
  uint64_t zipf_domain_ = 0;  // domain the zipf generator was built for
};

}  // namespace gimbal::workload
