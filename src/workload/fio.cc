#include "workload/fio.h"

#include <cassert>

namespace gimbal::workload {

FioWorker::FioWorker(sim::Simulator& sim, fabric::Initiator& initiator,
                     FioSpec spec)
    : sim_(sim), initiator_(initiator), spec_(spec), rng_(spec.seed) {
  assert(spec_.region_bytes >= spec_.io_bytes && "region not set");
  // Sequential workers start at a seed-dependent position so concurrent
  // sequential streams do not all hammer the same LBAs (fio's per-job file
  // offsets behave the same way).
  seq_cursor_ = rng_.NextBounded(spec_.region_bytes / spec_.io_bytes);
}

void FioWorker::Start() {
  if (running_) return;
  running_ = true;
  for (uint32_t i = 0; i < spec_.queue_depth; ++i) ScheduleNext();
}

uint64_t FioWorker::NextOffset(IoType /*type*/) {
  const uint64_t slots = spec_.region_bytes / spec_.io_bytes;
  uint64_t slot = spec_.sequential ? (seq_cursor_++ % slots)
                                   : rng_.NextBounded(slots);
  return spec_.region_offset + slot * spec_.io_bytes;
}

void FioWorker::ScheduleNext() {
  if (!running_) return;
  if (spec_.rate_cap_bps <= 0) {
    IssueOne();
    return;
  }
  // Rate cap: space issues so that the average byte rate stays at the cap.
  Tick now = sim_.now();
  Tick gap = TransferTime(spec_.io_bytes, spec_.rate_cap_bps);
  Tick when = next_allowed_ < now ? now : next_allowed_;
  next_allowed_ = when + gap;
  if (when <= now) {
    IssueOne();
  } else {
    sim_.After(when - now, [this]() {
      if (running_) IssueOne();
    });
  }
}

void FioWorker::IssueOne() {
  IoType type = rng_.NextBool(spec_.read_ratio) ? IoType::kRead
                                                : IoType::kWrite;
  ++outstanding_;
  initiator_.Submit(type, NextOffset(type), spec_.io_bytes, spec_.priority,
                    [this](const IoCompletion& cpl, Tick e2e) {
                      OnDone(cpl, e2e);
                    });
}

void FioWorker::OnDone(const IoCompletion& cpl, Tick e2e) {
  --outstanding_;
  if (!cpl.ok()) {
    ++stats_.failed_ios;
    // A dead connection rejects every resubmission instantly; looping on
    // it would spin the event queue forever. Transient failures (media
    // errors, fail-fast drains) keep the closed loop going.
    if (initiator_.shutdown()) {
      running_ = false;
      return;
    }
    ScheduleNext();
    return;
  }
  if (cpl.type == IoType::kRead) {
    stats_.read_bytes += cpl.length;
    ++stats_.read_ios;
    stats_.read_latency.Record(e2e);
  } else {
    stats_.write_bytes += cpl.length;
    ++stats_.write_ios;
    stats_.write_latency.Record(e2e);
  }
  ScheduleNext();
}

}  // namespace gimbal::workload
