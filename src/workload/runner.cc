#include "workload/runner.h"

#include <cassert>

namespace gimbal::workload {

const char* ToString(Scheme s) {
  switch (s) {
    case Scheme::kVanilla: return "vanilla";
    case Scheme::kReflex: return "reflex";
    case Scheme::kParda: return "parda";
    case Scheme::kFlashFq: return "flashfq";
    case Scheme::kGimbal: return "gimbal";
    case Scheme::kTimeslice: return "timeslice";
  }
  return "?";
}

fabric::ThrottleMode ThrottleFor(Scheme s) {
  switch (s) {
    case Scheme::kGimbal: return fabric::ThrottleMode::kCredit;
    case Scheme::kParda: return fabric::ThrottleMode::kParda;
    default: return fabric::ThrottleMode::kNone;
  }
}

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg), sim_(cfg_.queue_impl) {
  if (cfg_.obs && cfg_.run_label.empty()) cfg_.run_label = ToString(cfg_.scheme);
  if (cfg_.obs) cfg_.obs->metrics.set_run(cfg_.run_label);
  if (cfg_.check) {
    check_ = cfg_.check;
  } else {
    owned_check_ = std::make_unique<check::InvariantChecker>();
    check_ = owned_check_.get();
  }
  check_->AttachSim(&sim_);
  if (cfg_.obs) check_->AttachTracer(&cfg_.obs->tracer);
  net_ = std::make_unique<fabric::Network>(sim_, cfg_.net);
  faults_ =
      std::make_unique<fault::FaultInjector>(sim_, cfg_.num_ssds,
                                             cfg_.fault_seed);
  faults_->AttachObservability(cfg_.obs);
  const bool faulted = !cfg_.faults.empty();
  if (!cfg_.faults.link_flaps.empty()) net_->set_fault_injector(faults_.get());
  faults_->AttachChecker(check_);
  target_ = std::make_unique<fabric::Target>(sim_, *net_, cfg_.target);
  // Attach before AddPipeline so policies resolve handles as they appear.
  target_->AttachObservability(cfg_.obs);
  target_->AttachChecker(check_);
  for (int i = 0; i < cfg_.num_ssds; ++i) {
    if (cfg_.use_null_device) {
      devices_.push_back(std::make_unique<ssd::NullDevice>(sim_));
      ssds_.push_back(nullptr);
    } else {
      auto dev = std::make_unique<ssd::Ssd>(sim_, cfg_.ssd);
      if (cfg_.condition == SsdCondition::kClean) {
        dev->PreconditionClean();
      } else {
        dev->PreconditionFragmented(3.0, /*seed=*/42 + i);
      }
      ssds_.push_back(dev.get());
      devices_.push_back(std::move(dev));
    }
    if (faulted) {
      // Interpose the fault layer between the policy and the device model;
      // ssd(i) still exposes the inner model for preconditioning/stats.
      devices_[i] = std::make_unique<fault::FaultyDevice>(
          sim_, std::move(devices_[i]), *faults_, i);
    }
    if (cfg_.obs) devices_.back()->AttachObservability(cfg_.obs, i);
    int id = target_->AddPipeline(MakePolicy(*devices_.back()));
    assert(id == i);
    (void)id;
    // Health transitions reach the pipeline's policy (fail-fast drain on
    // kFailed, EWMA reset on recovery — core/gimbal_switch.cc).
    core::IoPolicy* policy = &target_->policy(i);
    faults_->Subscribe(i, [policy](fault::SsdHealth h) {
      policy->OnSsdHealthChange(h);
    });
  }
  if (faulted) faults_->Schedule(cfg_.faults);
}

std::unique_ptr<core::IoPolicy> Testbed::MakePolicy(ssd::BlockDevice& dev) {
  switch (cfg_.scheme) {
    case Scheme::kVanilla:
      return std::make_unique<baselines::FcfsPolicy>(sim_, dev);
    case Scheme::kReflex:
      return std::make_unique<baselines::ReflexPolicy>(sim_, dev, cfg_.reflex);
    case Scheme::kParda:
      return std::make_unique<baselines::PardaPolicy>(sim_, dev);
    case Scheme::kFlashFq:
      return std::make_unique<baselines::FlashFqPolicy>(sim_, dev,
                                                        cfg_.flashfq);
    case Scheme::kGimbal:
      return std::make_unique<core::GimbalSwitch>(sim_, dev, cfg_.gimbal);
    case Scheme::kTimeslice:
      return std::make_unique<baselines::TimeslicePolicy>(sim_, dev,
                                                          cfg_.timeslice);
  }
  return nullptr;
}

core::GimbalSwitch* Testbed::gimbal_switch(int i) {
  return cfg_.scheme == Scheme::kGimbal
             ? static_cast<core::GimbalSwitch*>(&target_->policy(i))
             : nullptr;
}

fabric::Initiator& Testbed::AddInitiator(
    int ssd_index, std::optional<fabric::ThrottleMode> throttle) {
  initiators_.push_back(std::make_unique<fabric::Initiator>(
      sim_, *net_, *target_, ssd_index, next_tenant_++,
      throttle.value_or(ThrottleFor(cfg_.scheme)), cfg_.parda, cfg_.retry));
  initiators_.back()->AttachObservability(cfg_.obs);
  initiators_.back()->AttachChecker(check_);
  return *initiators_.back();
}

FioWorker& Testbed::AddWorker(FioSpec spec, int ssd_index) {
  if (spec.region_bytes == 0) {
    spec.region_bytes = device(ssd_index).capacity_bytes();
  }
  fabric::Initiator& init = AddInitiator(ssd_index);
  workers_.push_back(std::make_unique<FioWorker>(sim_, init, spec));
  return *workers_.back();
}

void Testbed::Run(Tick warmup, Tick measure) {
  for (auto& w : workers_) w->Start();
  sim_.RunUntil(sim_.now() + warmup);
  for (auto& w : workers_) w->stats().Reset();
  // Align metric totals with the workers' measurement window (gauges and
  // latency EWMAs keep their warmed-up values; counters/histograms restart).
  if (cfg_.obs) cfg_.obs->metrics.ResetRun(cfg_.run_label);
  sim_.RunUntil(sim_.now() + measure);
  measured_ = measure;
}

double StandaloneBandwidth(const TestbedConfig& cfg, const FioSpec& spec,
                           Tick warmup, Tick measure, int workers) {
  // The denominator of f-Util is what the workload could achieve running
  // exclusively on the *device* — measured through the unmodified target
  // so a scheme's own throttling (e.g. ReFlex's static token cap) cannot
  // flatter its fairness number.
  TestbedConfig standalone_cfg = cfg;
  standalone_cfg.scheme = Scheme::kVanilla;
  // Standalone runs are denominators, not results: keep them out of the
  // caller's metrics/trace output.
  standalone_cfg.obs = nullptr;
  standalone_cfg.run_label.clear();
  Testbed bed(standalone_cfg);
  for (int i = 0; i < workers; ++i) {
    FioSpec s = spec;
    s.seed = spec.seed + static_cast<uint64_t>(i) * 7919 + 1;
    bed.AddWorker(s, 0);
  }
  bed.Run(warmup, measure);
  uint64_t bytes = 0;
  for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
  return RateBps(bytes, measure);
}

}  // namespace gimbal::workload
