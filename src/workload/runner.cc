#include "workload/runner.h"

#include <algorithm>
#include <cassert>

namespace gimbal::workload {

const char* ToString(Scheme s) {
  switch (s) {
    case Scheme::kVanilla: return "vanilla";
    case Scheme::kReflex: return "reflex";
    case Scheme::kParda: return "parda";
    case Scheme::kFlashFq: return "flashfq";
    case Scheme::kGimbal: return "gimbal";
    case Scheme::kTimeslice: return "timeslice";
  }
  return "?";
}

fabric::ThrottleMode ThrottleFor(Scheme s) {
  switch (s) {
    case Scheme::kGimbal: return fabric::ThrottleMode::kCredit;
    case Scheme::kParda: return fabric::ThrottleMode::kParda;
    default: return fabric::ThrottleMode::kNone;
  }
}

int Testbed::ShardOf(int i) const {
  const int node = i / ssds_per_node_;
  return 1 + node * used_cores_ + (i % ssds_per_node_) % used_cores_;
}

sim::Simulator& Testbed::SsdSim(int i) {
  if (!engine_) return *sim_;
  return engine_->shard(ShardOf(i));
}

obs::Observability* Testbed::SsdObs(int i) {
  if (shard_obs_.empty()) return cfg_.obs;
  return shard_obs_[static_cast<size_t>(ShardOf(i))].get();
}

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg) {
  if (cfg_.obs && cfg_.run_label.empty()) cfg_.run_label = ToString(cfg_.scheme);
  if (cfg_.obs) cfg_.obs->metrics.set_run(cfg_.run_label);

  assert(cfg_.nodes >= 1);
  assert(cfg_.num_ssds % cfg_.nodes == 0 &&
         "num_ssds must divide evenly across nodes");
  ssds_per_node_ = cfg_.num_ssds / cfg_.nodes;

  // Sharding is structural, not a function of the thread count: the same
  // shard/epoch schedule runs whether 1 or N threads execute it, which is
  // what makes the determinism contract trivial to honor. A single-SSD
  // testbed (or a zero-latency fabric, which admits no lookahead) keeps
  // the original single-simulator path unchanged.
  const bool sharded = cfg_.num_ssds > 1 && cfg_.net.base_latency > 0;
  if (sharded) {
    // (node, core) topology: one shard per used core per node, so a rack
    // bed's schedule — like the single node's — is thread-count invariant.
    used_cores_ = std::min(cfg_.target.cores, ssds_per_node_);
    sim::ShardedEngine::Config ec;
    ec.threads = cfg_.threads;
    ec.lookahead = cfg_.net.base_latency;
    ec.impl = cfg_.queue_impl;
    // Coarsening merges single-shard stretches into one synchronization
    // round without changing the executed schedule or the barrier-hook
    // sequence (sim/shard.h); `uniform_epochs` keeps the full barrier
    // cadence for the adaptive-epoch tests' A/B comparisons.
    ec.adaptive = !cfg_.uniform_epochs;
    engine_ =
        std::make_unique<sim::ShardedEngine>(1 + cfg_.nodes * used_cores_, ec);
    sim_ = &engine_->shard(0);
    if (cfg_.obs) {
      shard_obs_.resize(static_cast<size_t>(engine_->num_shards()));
      for (auto& o : shard_obs_) {
        o = std::make_unique<obs::Observability>();
        o->metrics.set_run(cfg_.run_label);
      }
    }
    engine_->set_barrier_fn([this]() { OnEpochBarrier(); });
    // Trace stitching is deferred off the barrier path: it runs once per
    // Run()/RunToIdle, after the final barrier, so callers that read the
    // session tracer right after sim().Run() still see a complete trace.
    engine_->set_run_end_fn([this]() { MergeShardTracers(); });
  } else {
    owned_sim_ = std::make_unique<sim::Simulator>(cfg_.queue_impl);
    sim_ = owned_sim_.get();
  }

  if (cfg_.check) {
    check_ = cfg_.check;
  } else {
    owned_check_ = std::make_unique<check::InvariantChecker>();
    check_ = owned_check_.get();
  }
  check_->AttachSim(sim_);
  if (cfg_.obs) check_->AttachTracer(&cfg_.obs->tracer);
  check_->SetConcurrent(engine_ && engine_->threads() > 1);

  net_ = std::make_unique<fabric::Network>(*sim_, cfg_.net);
  faults_ = std::make_unique<fault::FaultInjector>(*sim_, cfg_.num_ssds,
                                                   cfg_.fault_seed);
  if (cfg_.nodes > 1) {
    // Rack fabric: every message crosses the shared ToR uplink and its
    // node's access link; whole-node failures black the node out at the
    // fabric and fail its SSDs atomically via the injector's node map.
    std::vector<int> node_map(static_cast<size_t>(cfg_.num_ssds));
    for (int i = 0; i < cfg_.num_ssds; ++i) node_map[i] = node_of(i);
    net_->ConfigureRack(node_map, cfg_.nodes,
                        cfg_.uplink_bps > 0 ? cfg_.uplink_bps
                                            : cfg_.net.bandwidth_bps);
    net_->AttachChecker(check_);
    faults_->ConfigureNodes(std::move(node_map));
    for (const fault::NodeFailure& nf : cfg_.faults.node_failures) {
      net_->AddNodeOutage(nf.node, nf.fail_at, nf.recover_at);
    }
  }
  if (engine_) {
    std::vector<sim::Simulator*> ssd_sims(static_cast<size_t>(cfg_.num_ssds));
    std::vector<obs::Observability*> ssd_obs(static_cast<size_t>(cfg_.num_ssds));
    for (int i = 0; i < cfg_.num_ssds; ++i) {
      ssd_sims[i] = &SsdSim(i);
      ssd_obs[i] = shard_obs_.empty() ? nullptr : SsdObs(i);
    }
    net_->ConfigureSharded(sim_, ssd_sims, engine_->num_shards());
    // Coarsening probe: a coarsened epoch must stop at the first sub-epoch
    // that buffers a cross-shard send (sim/shard.h).
    engine_->set_pending_sends_fn([this]() { return net_->has_pending(); });
    faults_->ConfigureShards(ssd_sims, ssd_obs);
  }
  // Client-side components record into shard 0's private observability
  // under sharding, so their events merge into the session tracer in
  // timestamp order with everything else.
  obs::Observability* client_obs =
      shard_obs_.empty() ? cfg_.obs : shard_obs_[0].get();
  faults_->AttachObservability(client_obs);
  const bool faulted = !cfg_.faults.empty();
  if (!cfg_.faults.link_flaps.empty()) net_->set_fault_injector(faults_.get());
  faults_->AttachChecker(check_);

  // One Target per node; node n hands out global pipeline ids starting at
  // its base, so pipeline/SSD/tenant addressing stays flat rack-wide.
  for (int n = 0; n < cfg_.nodes; ++n) {
    auto target = std::make_unique<fabric::Target>(*sim_, *net_, cfg_.target);
    target->SetPipelineBase(n * ssds_per_node_);
    if (engine_) {
      std::vector<sim::Simulator*> core_sims(
          static_cast<size_t>(cfg_.target.cores), sim_);
      for (int c = 0; c < used_cores_; ++c) {
        core_sims[c] = &engine_->shard(1 + n * used_cores_ + c);
      }
      target->ConfigureShards(core_sims);
    }
    // Attach before AddPipeline so policies resolve handles as they appear.
    target->AttachObservability(cfg_.obs);
    target->AttachChecker(check_);
    targets_.push_back(std::move(target));
  }
  for (int i = 0; i < cfg_.num_ssds; ++i) {
    sim::Simulator& psim = SsdSim(i);
    if (cfg_.use_null_device) {
      devices_.push_back(std::make_unique<ssd::NullDevice>(psim));
      ssds_.push_back(nullptr);
    } else {
      auto dev = std::make_unique<ssd::Ssd>(psim, cfg_.ssd);
      if (cfg_.condition == SsdCondition::kClean) {
        dev->PreconditionClean();
      } else {
        dev->PreconditionFragmented(3.0, /*seed=*/42 + i);
      }
      ssds_.push_back(dev.get());
      devices_.push_back(std::move(dev));
    }
    if (faulted) {
      // Interpose the fault layer between the policy and the device model;
      // ssd(i) still exposes the inner model for preconditioning/stats.
      devices_[i] = std::make_unique<fault::FaultyDevice>(
          psim, std::move(devices_[i]), *faults_, i);
    }
    if (cfg_.obs) devices_.back()->AttachObservability(SsdObs(i), i);
    int id = target_of(i).AddPipeline(MakePolicy(psim, *devices_.back()),
                                      shard_obs_.empty() ? nullptr : SsdObs(i));
    assert(id == i);
    (void)id;
    // Health transitions reach the pipeline's policy (fail-fast drain on
    // kFailed, EWMA reset on recovery — core/gimbal_switch.cc).
    core::IoPolicy* policy = &target_of(i).policy(i);
    faults_->Subscribe(i, [policy](fault::SsdHealth h) {
      policy->OnSsdHealthChange(h);
    });
  }
  if (faulted) faults_->Schedule(cfg_.faults);
}

Testbed::~Testbed() {
  // Shard tracers merge at the end of every engine run; metrics drain here
  // (and at the end of every Run), while everything is still alive and
  // quiescent.
  PublishRackMetrics();
  MergeShardTracers();
  FlushShardMetrics();
}

void Testbed::PublishRackMetrics() {
  if (!cfg_.obs || !net_->rack()) return;
  namespace schema = obs::schema;
  obs::MetricsRegistry& reg = cfg_.obs->metrics;
  reg.GetGauge(schema::kRackUplinkBytes)
      .Set(static_cast<double>(net_->uplink_bytes()));
  for (int n = 0; n < net_->nodes(); ++n) {
    reg.GetGauge(schema::kRackNodeUplinkBytes, obs::Labels::Ssd(n))
        .Set(static_cast<double>(net_->node_uplink_bytes(n)));
  }
  reg.GetGauge(schema::kRackNodeDrops)
      .Set(static_cast<double>(net_->node_drops()));
}

void Testbed::OnEpochBarrier() {
  // The barrier is the engine's per-epoch constant factor: only the work
  // that *must* happen while all shards are quiescent lives here. Trace
  // stitching and metric merging are deferred to the end of the run; the
  // barrier just records where each batch ends.
  PropagateTracerEnable();
  RecordTraceMarks();
  net_->ReplayPending();
}

void Testbed::RecordTraceMarks() {
  if (!tracers_live_) return;
  size_t total = 0;
  for (auto& o : shard_obs_) total += o->tracer.size();
  // Buffer sizes only grow between merges, so an unchanged total means an
  // empty batch: it would stitch to nothing, and skipping it keeps the
  // mark log proportional to the trace, not to the barrier count. (The
  // session mark can be skipped along with it: session-direct events
  // recorded across skipped barriers sit before the next *recorded*
  // batch, which is where the inline stitch left them too.)
  if (total == last_mark_total_) return;
  last_mark_total_ = total;
  trace_marks_.push_back(cfg_.obs->tracer.size());
  for (auto& o : shard_obs_) trace_marks_.push_back(o->tracer.size());
}

void Testbed::PropagateTracerEnable() {
  if (tracers_live_ || !cfg_.obs || shard_obs_.empty()) return;
  obs::EventTracer& session = cfg_.obs->tracer;
  if (!session.enabled()) return;
  // Session tracer enabled after construction: bring the shard tracers up
  // now; events before this point are lost exactly as they would be with a
  // late Enable() in plain mode. Latched so steady-state barriers pay one
  // boolean test.
  for (auto& o : shard_obs_) {
    if (!o->tracer.enabled()) o->tracer.Enable(session.limit());
  }
  tracers_live_ = true;
}

void Testbed::MergeShardTracers() {
  if (!cfg_.obs || shard_obs_.empty()) return;
  obs::EventTracer& session = cfg_.obs->tracer;
  if (!session.enabled()) return;
  PropagateTracerEnable();
  // Replay of the per-barrier stitch the engine used to do inline: every
  // mark row recorded by OnEpochBarrier delimits one barrier's batch — the
  // events each shard recorded since the previous row. A batch is
  // concatenated in shard order and stable-sorted by timestamp, the same
  // canonical (ts, shard) order the inline stitch appended at that
  // barrier, so deferring the sorts and appends to the end of the run
  // changes when the work happens, not the resulting byte stream. Span
  // events make this batch structure load-bearing: a span is recorded at
  // completion but carries its start as `ts`, so a single whole-run sort
  // would hoist it ahead of batches that preceded its recording.
  //
  // Some components record into the session tracer directly, mid-run: the
  // txn coordinators and the invariant checker attach the session obs, not
  // a shard one. The inline stitch interleaved its batches with those live
  // appends, so each mark row also carries the session buffer's size at
  // that barrier, and the merge rebuilds the whole stream: take the live
  // buffer out, then emit (session-direct events up to the row's mark,
  // then the row's batch) per row, in order.
  //
  // Truncation also matches: the rebuilt stream fills in exact inline
  // order, so its first `limit` events are the inline stitch's kept set.
  // Live appends the splice then drops had at least `limit` stream
  // predecessors, as do events dropped shard-side or (when session-direct
  // traffic alone overflows the buffer) live; each attempted event lands
  // in exactly one of the kept stream, the splice drop count, a shard's
  // drop count or the session's own, so the totals agree too.
  const size_t ns = shard_obs_.size();
  const size_t stride = ns + 1;  // session mark + one mark per shard
  std::vector<obs::EventTracer::Event> live = session.TakeForStitch();
  const size_t limit = session.limit();
  std::vector<obs::EventTracer::Event> out;
  size_t batched = 0;
  for (auto& o : shard_obs_) batched += o->tracer.size();
  out.reserve(std::min(live.size() + batched, limit));
  size_t extra_dropped = 0;
  size_t live_pos = 0;
  auto emit = [&](const obs::EventTracer::Event& e) {
    if (out.size() < limit) {
      out.push_back(e);
    } else {
      ++extra_dropped;
    }
  };
  std::vector<size_t> prev(ns, 0);
  auto stitch_batch = [&](const size_t* row) {
    for (; live_pos < row[0] && live_pos < live.size(); ++live_pos) {
      emit(live[live_pos]);
    }
    merge_buf_.clear();
    for (size_t s = 0; s < ns; ++s) {
      const auto& events = shard_obs_[s]->tracer.events();
      for (size_t i = prev[s]; i < row[s + 1]; ++i) {
        merge_buf_.push_back(events[i]);
      }
      prev[s] = row[s + 1];
    }
    std::stable_sort(
        merge_buf_.begin(), merge_buf_.end(),
        [](const obs::EventTracer::Event& a,
           const obs::EventTracer::Event& b) { return a.ts < b.ts; });
    for (const obs::EventTracer::Event& e : merge_buf_) emit(e);
  };
  for (size_t r = 0; r + stride <= trace_marks_.size(); r += stride) {
    stitch_batch(&trace_marks_[r]);
  }
  // Tail: events recorded since the last barrier (a mid-run flush) form
  // one final batch, exactly as an inline stitch at this point would.
  std::vector<size_t> tail(stride);
  tail[0] = live.size();
  for (size_t s = 0; s < ns; ++s) tail[s + 1] = shard_obs_[s]->tracer.size();
  stitch_batch(tail.data());
  session.RestoreFromStitch(std::move(out), extra_dropped);
  for (auto& o : shard_obs_) {
    session.AddDropped(o->tracer.dropped());
    o->tracer.Clear();
  }
  trace_marks_.clear();
  last_mark_total_ = 0;
}

void Testbed::FlushShardMetrics() {
  if (!cfg_.obs || shard_obs_.empty()) return;
  // Delta drain: only series touched since the previous flush move, each
  // through a cached session-side pointer — repeated flushes of a
  // quiescent shard cost a linear dirty scan and add nothing twice.
  for (auto& o : shard_obs_) {
    o->metrics.DrainDeltaInto(cfg_.obs->metrics);
  }
  PublishEngineMetrics();
}

void Testbed::PublishEngineMetrics() {
  if (!cfg_.obs || !engine_) return;
  namespace schema = obs::schema;
  obs::MetricsRegistry& reg = cfg_.obs->metrics;
  reg.GetGauge(schema::kShardEpochs)
      .Set(static_cast<double>(engine_->epochs()));
  reg.GetGauge(schema::kShardIdleWakeups)
      .Set(static_cast<double>(engine_->idle_wakeups()));
}

std::unique_ptr<core::IoPolicy> Testbed::MakePolicy(sim::Simulator& psim,
                                                    ssd::BlockDevice& dev) {
  switch (cfg_.scheme) {
    case Scheme::kVanilla:
      return std::make_unique<baselines::FcfsPolicy>(psim, dev);
    case Scheme::kReflex:
      return std::make_unique<baselines::ReflexPolicy>(psim, dev, cfg_.reflex);
    case Scheme::kParda:
      return std::make_unique<baselines::PardaPolicy>(psim, dev);
    case Scheme::kFlashFq:
      return std::make_unique<baselines::FlashFqPolicy>(psim, dev,
                                                        cfg_.flashfq);
    case Scheme::kGimbal:
      return std::make_unique<core::GimbalSwitch>(psim, dev, cfg_.gimbal);
    case Scheme::kTimeslice:
      return std::make_unique<baselines::TimeslicePolicy>(psim, dev,
                                                          cfg_.timeslice);
  }
  return nullptr;
}

core::GimbalSwitch* Testbed::gimbal_switch(int i) {
  return cfg_.scheme == Scheme::kGimbal
             ? static_cast<core::GimbalSwitch*>(&target_of(i).policy(i))
             : nullptr;
}

std::unique_ptr<fabric::Initiator> Testbed::MakeInitiator(
    int ssd_index, TenantId tenant, fabric::ConnectMode connect,
    std::optional<fabric::ThrottleMode> throttle) {
  obs::Observability* client_obs =
      shard_obs_.empty() ? cfg_.obs : shard_obs_[0].get();
  auto init = std::make_unique<fabric::Initiator>(
      *sim_, *net_, target_of(ssd_index), ssd_index, tenant,
      throttle.value_or(ThrottleFor(cfg_.scheme)), cfg_.parda, cfg_.retry,
      connect);
  init->AttachObservability(cfg_.obs ? client_obs : nullptr);
  init->AttachChecker(check_);
  return init;
}

fabric::Initiator& Testbed::AddInitiator(
    int ssd_index, std::optional<fabric::ThrottleMode> throttle) {
  initiators_.push_back(MakeInitiator(ssd_index, next_tenant_++,
                                      fabric::ConnectMode::kDirect,
                                      throttle));
  return *initiators_.back();
}

FioWorker& Testbed::AddWorker(FioSpec spec, int ssd_index) {
  if (spec.region_bytes == 0) {
    spec.region_bytes = device(ssd_index).capacity_bytes();
  }
  fabric::Initiator& init = AddInitiator(ssd_index);
  workers_.push_back(std::make_unique<FioWorker>(*sim_, init, spec));
  return *workers_.back();
}

void Testbed::Run(Tick warmup, Tick measure) {
  for (auto& w : workers_) w->Start();
  sim_->RunUntil(sim_->now() + warmup);
  for (auto& w : workers_) w->stats().Reset();
  // Align metric totals with the workers' measurement window (gauges and
  // latency EWMAs keep their warmed-up values; counters/histograms restart).
  if (cfg_.obs) {
    cfg_.obs->metrics.ResetRun(cfg_.run_label);
    for (auto& o : shard_obs_) o->metrics.ResetRun(cfg_.run_label);
  }
  sim_->RunUntil(sim_->now() + measure);
  measured_ = measure;
  // Make this run's shard-recorded totals visible to callers that read the
  // session registry while the testbed is still alive.
  FlushShardMetrics();
}

double StandaloneBandwidth(const TestbedConfig& cfg, const FioSpec& spec,
                           Tick warmup, Tick measure, int workers) {
  // The denominator of f-Util is what the workload could achieve running
  // exclusively on the *device* — measured through the unmodified target
  // so a scheme's own throttling (e.g. ReFlex's static token cap) cannot
  // flatter its fairness number.
  TestbedConfig standalone_cfg = cfg;
  standalone_cfg.scheme = Scheme::kVanilla;
  // Standalone runs are denominators, not results: keep them out of the
  // caller's metrics/trace output.
  standalone_cfg.obs = nullptr;
  standalone_cfg.run_label.clear();
  Testbed bed(standalone_cfg);
  for (int i = 0; i < workers; ++i) {
    FioSpec s = spec;
    s.seed = spec.seed + static_cast<uint64_t>(i) * 7919 + 1;
    bed.AddWorker(s, 0);
  }
  bed.Run(warmup, measure);
  uint64_t bytes = 0;
  for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
  return RateBps(bytes, measure);
}

}  // namespace gimbal::workload
