// Arrival processes for open-loop traffic (ROADMAP item 3).
//
// Three stacked rate modulations over a base Poisson process:
//
//   * Poisson    — exponential gaps at the base rate (the default; with no
//                  modulation configured the generator draws exactly one
//                  exponential per arrival, byte-compatible with the old
//                  OpenLoopWorker's schedule).
//   * MMPP burst — a 2-state Markov-modulated Poisson process: the rate is
//                  multiplied by `burst_multiplier` while the process is in
//                  its ON state. Dwell times are exponential; the ON-state
//                  mean is `burst_mean_duration` and the OFF-state mean is
//                  derived so the stationary fraction of time spent ON is
//                  `burst_fraction`:  off_mean = on_mean * (1 - f) / f.
//   * Diurnal    — a deterministic sinusoid: factor(t) = 1 + A sin(2πt/P),
//                  modelling the day/night swing of a production tenant
//                  population (squeezed into simulated milliseconds).
//
// Time-varying rates are sampled exactly by Lewis & Shedler thinning:
// candidate gaps are drawn at the peak rate r_max = base x max-factor and
// each candidate is accepted with probability r(t)/r_max, which yields a
// non-homogeneous Poisson process with intensity r(t) — no discretization
// error at modulation-state boundaries.
//
// Determinism: all randomness flows through the caller-owned Rng, and MMPP
// state advances lazily as a pure function of (rng sequence, query times),
// so a given seed reproduces the same arrival schedule on any engine or
// thread count.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "nvme/types.h"

namespace gimbal::workload {

struct ArrivalSpec {
  // MMPP burst modulation; 1.0 = pure Poisson (no burst state machine).
  double burst_multiplier = 1.0;
  double burst_fraction = 0.1;          // stationary fraction of time ON
  Tick burst_mean_duration = Milliseconds(5);  // mean ON dwell

  // Diurnal modulation; period 0 disables. Amplitude in [0, 1).
  Tick diurnal_period = 0;
  double diurnal_amplitude = 0.0;

  bool Modulated() const {
    return burst_multiplier != 1.0 || diurnal_period > 0;
  }
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec, uint64_t burst_seed = 0x9bad5eedULL)
      : spec_(spec), burst_rng_(burst_seed) {
    assert(spec_.burst_multiplier >= 1.0);
    assert(spec_.burst_fraction > 0.0 && spec_.burst_fraction < 1.0);
    assert(spec_.diurnal_amplitude >= 0.0 && spec_.diurnal_amplitude < 1.0);
  }

  const ArrivalSpec& spec() const { return spec_; }

  // Instantaneous rate multiplier at simulated time `now`. Advances the
  // MMPP state machine as far as `now`; queries must be non-decreasing in
  // time (each caller naturally asks at its own arrival instants).
  double Factor(Tick now) {
    double f = 1.0;
    if (spec_.burst_multiplier > 1.0 && Bursting(now)) {
      f *= spec_.burst_multiplier;
    }
    if (spec_.diurnal_period > 0) {
      f *= 1.0 + spec_.diurnal_amplitude *
                     std::sin(2.0 * kPi * static_cast<double>(now) /
                              static_cast<double>(spec_.diurnal_period));
    }
    return f;
  }

  // Upper bound of Factor over all t (the thinning envelope).
  double PeakFactor() const {
    double f = spec_.burst_multiplier > 1.0 ? spec_.burst_multiplier : 1.0;
    if (spec_.diurnal_period > 0) f *= 1.0 + spec_.diurnal_amplitude;
    return f;
  }

  // Gap from `now` to the next arrival of a process with base rate
  // `base_iops`, modulated by this spec. Never returns 0.
  Tick NextGap(double base_iops, Tick now, Rng& rng) {
    assert(base_iops > 0);
    if (!spec_.Modulated()) {
      // Fast path == the historical Poisson generator, draw for draw.
      const double gap_ns = rng.NextExponential(kNsPerSec / base_iops);
      return static_cast<Tick>(gap_ns) + 1;
    }
    const double peak = base_iops * PeakFactor();
    Tick t = now;
    // Thinning: bounded rejection loop. The acceptance probability is
    // factor/peak >= (1-A)/(mult*(1+A)) > 0, so the bound is never the
    // expected path; it only guards degenerate configurations.
    for (int i = 0; i < 1024; ++i) {
      t += static_cast<Tick>(rng.NextExponential(kNsPerSec / peak)) + 1;
      const double accept = Factor(t) / PeakFactor();
      if (rng.NextDouble() < accept) break;
    }
    return t - now;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  // Advance the 2-state dwell machine to `now` and report the state.
  bool Bursting(Tick now) {
    while (state_until_ <= now) {
      on_ = !on_;
      const double mean = on_ ? OnMean() : OffMean();
      state_until_ += static_cast<Tick>(burst_rng_.NextExponential(mean)) + 1;
    }
    return on_;
  }
  double OnMean() const {
    return static_cast<double>(spec_.burst_mean_duration);
  }
  double OffMean() const {
    return OnMean() * (1.0 - spec_.burst_fraction) / spec_.burst_fraction;
  }

  ArrivalSpec spec_;
  Rng burst_rng_;  // dedicated stream: MMPP dwells are schedule-independent
  bool on_ = false;
  Tick state_until_ = 0;
};

// Heavy-tailed per-tenant rate assignment for large populations. A handful
// of tenants carry most of the offered load — the regime where fairness
// machinery earns its keep (OSMOSIS's observation; PAPERS.md).
enum class RateDist {
  kUniform,  // every session offers the mean
  kZipf,     // rank-based: session k offers ~ 1/(k+1)^theta, scaled to mean
  kPareto,   // sampled: Pareto(alpha) with the requested mean, clamped
};

struct RatePlan {
  RateDist dist = RateDist::kPareto;
  double mean_iops = 20.0;
  double zipf_theta = 0.99;
  double pareto_alpha = 1.5;  // tail index; must be > 1 for a finite mean
  // Clamp on any single session's rate, as a multiple of the mean; keeps a
  // lucky Pareto draw from dominating the aggregate offered load.
  double max_multiple = 1000.0;
};

// Rate for the session with population rank `rank` out of `population`.
// Deterministic given (plan, rank, u) where `u` is a uniform draw the
// caller supplies (used by the sampled distributions only).
inline double SessionRate(const RatePlan& plan, uint64_t rank,
                          uint64_t population, double u) {
  double rate = plan.mean_iops;
  switch (plan.dist) {
    case RateDist::kUniform:
      break;
    case RateDist::kZipf: {
      // Normalize so the population sums to population x mean. The
      // harmonic normalizer is approximated by the integral form, which
      // is exact enough for rate shaping (not a statistics estimator).
      const double theta = plan.zipf_theta;
      const double n = static_cast<double>(population < 1 ? 1 : population);
      const double norm =
          theta == 1.0
              ? std::log(n) + 0.5772156649
              : (std::pow(n, 1.0 - theta) - 1.0) / (1.0 - theta) + 0.5772;
      rate = plan.mean_iops * n /
             (norm * std::pow(static_cast<double>(rank + 1), theta));
      break;
    }
    case RateDist::kPareto: {
      // Pareto with mean m: scale x_m = m (alpha-1)/alpha, then
      // x = x_m (1-u)^(-1/alpha).
      const double alpha = plan.pareto_alpha;
      const double x_m = plan.mean_iops * (alpha - 1.0) / alpha;
      const double clamped_u = u >= 1.0 ? 0.999999999 : u;
      rate = x_m * std::pow(1.0 - clamped_u, -1.0 / alpha);
      break;
    }
  }
  const double cap = plan.mean_iops * plan.max_multiple;
  if (rate > cap) rate = cap;
  if (rate < 0.01) rate = 0.01;  // a session must make progress
  return rate;
}

}  // namespace gimbal::workload
