// TPC-C-lite: NewOrder/Payment-style multi-key transaction mixes over the
// KV store's flat keyspace, following the SmartOffloading / DBx1000 recipe
// of running TPC-C's contention structure (per-warehouse hot rows, skewed
// warehouse choice, read-modify-write order counters) without the full
// schema. Each generated transaction is an ordered list of key operations
// the transactional client (kv/txn.h: TxnClient) stages through the
// TxnCoordinator under 2PL.
//
// Keys pack (table, warehouse, row) into the KV store's uint64 keyspace so
// transactions on different warehouses are disjoint except for the shared
// ITEM table, and contention is dialled with two knobs: `warehouses` (fewer
// = hotter) and `warehouse_theta` (Zipf skew of the warehouse pick).
//
// Contention anatomy per transaction type:
//   * NewOrder: reads WAREHOUSE and CUSTOMER, read-modify-writes the
//     DISTRICT next-order counter (the classic hot upgrade lock), reads
//     ITEM and read-modify-writes STOCK per order line, inserts one ORDER
//     row (unique key, conflict-free).
//   * Payment: read-modify-writes WAREHOUSE ytd (the hottest lock in
//     TPC-C), read-modify-writes DISTRICT and CUSTOMER, inserts one
//     HISTORY row.
// Read-modify-writes are emitted as a read op followed by a write op on
// the same key, exercising the lock manager's S->X upgrade path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace gimbal::workload {

enum class TpccTxnType { kNewOrder, kPayment };
const char* ToString(TpccTxnType t);

// Table tags packed into key bits 56..63.
enum class TpccTable : uint64_t {
  kWarehouse = 1,
  kDistrict = 2,
  kCustomer = 3,
  kItem = 4,
  kStock = 5,
  kOrder = 6,
  kHistory = 7,
};

// (table, warehouse, row) -> flat KV key. ITEM rows pass warehouse 0 (the
// table is shared across warehouses, as in TPC-C).
inline uint64_t TpccKey(TpccTable table, uint64_t warehouse, uint64_t row) {
  return (static_cast<uint64_t>(table) << 56) | (warehouse << 40) |
         (row & ((1ull << 40) - 1));
}

struct TpccSpec {
  uint64_t warehouses = 4;
  uint64_t districts_per_warehouse = 10;
  uint64_t customers_per_district = 64;
  uint64_t items = 1024;
  uint64_t max_order_lines = 8;    // NewOrder picks uniform in [1, max]
  double warehouse_theta = 0.4;    // Zipf skew of the warehouse choice
  double new_order_ratio = 0.55;   // remainder is Payment
  // With probability `remote_item_prob` an order line's STOCK row lives in
  // a different (uniform) warehouse — TPC-C's 1% remote stock, the source
  // of cross-warehouse deadlock potential in real 2PL.
  double remote_item_prob = 0.05;
  uint32_t value_bytes = 256;
  uint64_t seed = 1;
};

// One key operation of a generated transaction, in execution order. A
// `write` op whose key was read earlier in the same transaction is an
// S->X upgrade under 2PL.
struct TpccOp {
  uint64_t key = 0;
  bool write = false;
};

struct TpccTxn {
  TpccTxnType type = TpccTxnType::kNewOrder;
  uint64_t warehouse = 0;  // home warehouse (diagnostics / tests)
  std::vector<TpccOp> ops;
};

class TpccGenerator {
 public:
  explicit TpccGenerator(TpccSpec spec);

  TpccTxn Next();

  const TpccSpec& spec() const { return spec_; }

 private:
  uint64_t PickWarehouse();

  TpccSpec spec_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> wh_zipf_;  // null when warehouses == 1
  uint64_t next_order_row_ = 0;    // unique ORDER/HISTORY row source
};

}  // namespace gimbal::workload
