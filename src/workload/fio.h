// fio-style synthetic workload driver (§5.1).
//
// A FioWorker plays one tenant: a closed loop keeping `queue_depth` IOs
// outstanding against one Initiator, with the knobs the paper's fio
// configurations use — IO size, read/write mix, random/sequential pattern,
// optional rate cap (Fig 9's 200/60 MB/s workers). Latencies are recorded
// end-to-end as the client observes them, split by IO type.
#pragma once

#include <cstdint>
#include <memory>

#include "common/histogram.h"
#include "common/rng.h"
#include "fabric/initiator.h"
#include "nvme/types.h"
#include "sim/simulator.h"

namespace gimbal::workload {

struct FioSpec {
  double read_ratio = 1.0;        // fraction of IOs that are reads
  uint32_t io_bytes = 4096;
  bool sequential = false;        // LBA pattern
  uint32_t queue_depth = 32;
  IoPriority priority = IoPriority::kNormal;
  double rate_cap_bps = 0;        // 0 = unlimited
  uint64_t region_offset = 0;     // byte range this worker touches
  uint64_t region_bytes = 0;      // 0 = whole device (set by the testbed)
  uint64_t seed = 1;
};

struct WorkerStats {
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t read_ios = 0;
  uint64_t write_ios = 0;
  // IOs that terminated with a non-ok status (docs/FAULTS.md); excluded
  // from the byte totals and latency histograms.
  uint64_t failed_ios = 0;
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;

  uint64_t total_bytes() const { return read_bytes + write_bytes; }
  uint64_t total_ios() const { return read_ios + write_ios; }
  void Reset() { *this = WorkerStats{}; }
};

class FioWorker {
 public:
  FioWorker(sim::Simulator& sim, fabric::Initiator& initiator, FioSpec spec);

  // Begin the closed loop; idempotent.
  void Start();
  // Stop issuing new IOs (outstanding ones drain naturally).
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  WorkerStats& stats() { return stats_; }
  const FioSpec& spec() const { return spec_; }
  fabric::Initiator& initiator() { return initiator_; }

 private:
  void IssueOne();
  void OnDone(const IoCompletion& cpl, Tick e2e);
  uint64_t NextOffset(IoType type);
  // Rate cap bookkeeping: earliest time the next IO may be issued.
  void ScheduleNext();

  sim::Simulator& sim_;
  fabric::Initiator& initiator_;
  FioSpec spec_;
  Rng rng_;
  WorkerStats stats_;
  bool running_ = false;
  uint32_t outstanding_ = 0;
  uint64_t seq_cursor_ = 0;
  Tick next_allowed_ = 0;  // rate cap pacing
};

}  // namespace gimbal::workload
