// FcfsPolicy is header-only; see fcfs_policy.h.
#include "baselines/fcfs_policy.h"
