// PARDA-style scheme (Gulati et al., FAST'09), ported per §5.1.
//
// PARDA leaves the storage target unmodified (FCFS) and regulates each
// *client's* issue window with a FAST-TCP-like control law driven by the
// observed average end-to-end IO latency:
//
//     w <- (1-gamma) w + gamma ( L_thresh / L_avg ) w
//
// evaluated per estimation epoch, clamped to [1, w_max]. The paper's port
// measures RTT by timestamping the NVMe-oF submission and reading it back
// on completion; here the initiator simply observes completion time minus
// submit time (identical information).
//
// The long client-side feedback loop is exactly what Fig 6 blames for
// PARDA's poor small-IO capacity detection.
#pragma once

#include <algorithm>

#include "baselines/fcfs_policy.h"
#include "common/stats.h"
#include "common/time.h"

namespace gimbal::baselines {

// Target-side: unmodified FCFS pipeline (PARDA's array is dumb).
class PardaPolicy : public FcfsPolicy {
 public:
  using FcfsPolicy::FcfsPolicy;
  std::string name() const override { return "parda"; }
};

struct PardaParams {
  Tick latency_threshold = Milliseconds(2);  // L_thresh
  double gamma = 0.5;                        // smoothing
  double initial_window = 8;
  double max_window = 256;
  Tick epoch = Milliseconds(5);              // window re-estimation period
  double ewma_alpha = 0.125;                 // average-latency smoothing
};

// Client-side window controller: one per (tenant, remote SSD).
class PardaWindow {
 public:
  explicit PardaWindow(PardaParams params = {})
      : params_(params), window_(params.initial_window),
        lat_avg_(params.ewma_alpha) {}

  // Can another IO be issued given `inflight` outstanding?
  bool CanIssue(uint32_t inflight) const {
    return static_cast<double>(inflight) < window_;
  }

  // Feed an observed end-to-end latency; re-evaluates the window once per
  // epoch.
  void OnCompletion(Tick latency, Tick now) {
    lat_avg_.Add(static_cast<double>(latency));
    if (epoch_start_ == 0) epoch_start_ = now;
    if (now - epoch_start_ < params_.epoch) return;
    epoch_start_ = now;
    const double lat = lat_avg_.value();
    if (lat <= 0) return;
    const double ratio = static_cast<double>(params_.latency_threshold) / lat;
    window_ = (1.0 - params_.gamma) * window_ + params_.gamma * ratio * window_;
    window_ = std::clamp(window_, 1.0, params_.max_window);
  }

  double window() const { return window_; }
  double average_latency() const { return lat_avg_.value(); }

 private:
  PardaParams params_;
  double window_;
  Ewma lat_avg_;
  Tick epoch_start_ = 0;
};

}  // namespace gimbal::baselines
