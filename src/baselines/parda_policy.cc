// PardaPolicy / PardaWindow are header-only; see parda_policy.h.
#include "baselines/parda_policy.h"
