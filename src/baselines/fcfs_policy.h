// Vanilla pass-through policy: first-come-first-served, no pacing, no
// fairness, unlimited credit. This is the behaviour of an unmodified SPDK
// NVMe-oF target and the reference point for Table 1 and Fig 13's
// "vanilla" bars.
#pragma once

#include "core/io_policy.h"

namespace gimbal::baselines {

class FcfsPolicy : public core::PolicyBase {
 public:
  FcfsPolicy(sim::Simulator& sim, ssd::BlockDevice& device)
      : PolicyBase(sim, device) {}

  void OnRequest(const IoRequest& req) override { SubmitToDevice(req); }
  std::string name() const override { return "vanilla"; }

 private:
  void OnDeviceCompletion(const IoRequest& req,
                          const ssd::DeviceCompletion& dc,
                          uint64_t /*tag*/) override {
    Deliver(req, dc);
  }
};

}  // namespace gimbal::baselines
