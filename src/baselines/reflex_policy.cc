#include "baselines/reflex_policy.h"

#include <algorithm>

namespace gimbal::baselines {

void ReflexPolicy::OnRequest(const IoRequest& req) {
  Flow& f = flows_[req.tenant];
  f.queue.push_back(req);
  if (!f.in_round) {
    f.in_round = true;
    round_.push_back(req.tenant);
  }
  Pump();
}

void ReflexPolicy::RefillTokens() {
  Tick now = sim_.now();
  if (!refill_started_) {
    refill_started_ = true;
    last_refill_ = now;
    return;
  }
  tokens_ += params_.token_rate * static_cast<double>(now - last_refill_) /
             kNsPerSec;
  if (tokens_ > params_.bucket_cap) tokens_ = params_.bucket_cap;
  last_refill_ = now;
}

void ReflexPolicy::Pump() {
  RefillTokens();
  // DRR over flows, spending the calibrated token cost per request. Like
  // any DRR, a head request costing several quanta accumulates deficit
  // over consecutive rounds, so keep cycling until a dispatch happens or
  // the device tokens run dry (costs are bounded, so this terminates).
  constexpr size_t kMaxPasses = 100000;
  for (size_t i = 0; i < kMaxPasses && !round_.empty(); ++i) {
    TenantId id = round_.front();
    Flow& f = flows_[id];
    if (f.queue.empty()) {
      f.in_round = false;
      f.deficit = 0;
      round_.pop_front();
      continue;
    }
    double cost = TokenCost(f.queue.front());
    if (f.deficit < cost) {
      f.deficit += params_.quantum;
      round_.pop_front();
      round_.push_back(id);
      continue;
    }
    if (tokens_ < cost && tokens_ < params_.bucket_cap) {
      // Out of device tokens: retry when enough have accrued. A request
      // costing more than the bucket cap dispatches from a full bucket and
      // drives the balance negative, which throttles what follows —
      // otherwise it could never be served at all.
      double need = std::min(cost, params_.bucket_cap) - tokens_;
      SchedulePoke(static_cast<Tick>(need / params_.token_rate * kNsPerSec) +
                   Microseconds(1));
      return;
    }
    tokens_ -= cost;
    f.deficit -= cost;
    IoRequest req = f.queue.front();
    f.queue.pop_front();
    SubmitToDevice(req);
    // Restart the scan: the same flow may continue while its deficit lasts.
    i = 0;
  }
}

void ReflexPolicy::SchedulePoke(Tick delay) {
  if (poke_scheduled_) return;
  poke_scheduled_ = true;
  sim_.After(delay, [this]() {
    poke_scheduled_ = false;
    Pump();
  });
}

void ReflexPolicy::OnDeviceCompletion(const IoRequest& req,
                                      const ssd::DeviceCompletion& dc,
                                      uint64_t /*tag*/) {
  Deliver(req, dc);
  Pump();
}

}  // namespace gimbal::baselines
