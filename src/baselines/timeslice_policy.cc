#include "baselines/timeslice_policy.h"

namespace gimbal::baselines {

void TimeslicePolicy::OnRequest(const IoRequest& req) {
  Flow& f = flows_[req.tenant];
  f.queue.push_back(req);
  if (!f.in_rotation && req.tenant != current_) {
    f.in_rotation = true;
    rotation_.push_back(req.tenant);
  }
  if (!slice_active_) {
    StartSlice();
  } else {
    Pump();
  }
}

void TimeslicePolicy::StartSlice() {
  // Pick the next tenant with queued work; idle tenants drop out.
  while (!rotation_.empty()) {
    TenantId t = rotation_.front();
    rotation_.pop_front();
    flows_[t].in_rotation = false;
    if (!flows_[t].queue.empty()) {
      current_ = t;
      slice_active_ = true;
      uint64_t seq = ++slice_seq_;
      sim_.After(params_.quantum, [this, seq]() {
        if (seq == slice_seq_ && slice_active_) EndSlice();
      });
      Pump();
      return;
    }
  }
  // No backlog anywhere: go idle until the next arrival.
  slice_active_ = false;
  current_ = 0;
}

void TimeslicePolicy::EndSlice() {
  slice_active_ = false;
  Flow& f = flows_[current_];
  if (!f.queue.empty() && !f.in_rotation) {
    f.in_rotation = true;
    rotation_.push_back(current_);
  }
  current_ = 0;
  StartSlice();
}

void TimeslicePolicy::Pump() {
  if (!slice_active_) return;
  Flow& f = flows_[current_];
  while (!f.queue.empty() && outstanding_ < params_.depth) {
    IoRequest req = f.queue.front();
    f.queue.pop_front();
    ++outstanding_;
    SubmitToDevice(req);
  }
}

void TimeslicePolicy::OnDeviceCompletion(const IoRequest& req,
                                         const ssd::DeviceCompletion& dc,
                                         uint64_t /*tag*/) {
  --outstanding_;
  Deliver(req, dc);
  if (slice_active_) {
    Pump();
  } else if (outstanding_ == 0) {
    StartSlice();
  }
}

}  // namespace gimbal::baselines
