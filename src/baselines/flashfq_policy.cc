#include "baselines/flashfq_policy.h"

#include <algorithm>
#include <limits>

namespace gimbal::baselines {

void FlashFqPolicy::OnRequest(const IoRequest& req) {
  Flow& f = flows_[req.tenant];
  // SFQ tag assignment at arrival: start chains behind the flow's previous
  // finish or the system virtual time, whichever is later.
  double start = std::max(vtime_, f.last_finish);
  f.last_finish = start + Cost(req);
  f.anticipating = false;  // the awaited request arrived
  f.queue.push_back(Tagged{req, start});
  Pump();
}

void FlashFqPolicy::Pump() {
  while (outstanding_ < params_.depth) {
    // Pick the backlogged flow with the smallest head start tag.
    Flow* best = nullptr;
    double best_tag = std::numeric_limits<double>::infinity();
    for (auto& [id, f] : flows_) {
      if (f.queue.empty()) continue;
      if (f.queue.front().start_tag < best_tag) {
        best_tag = f.queue.front().start_tag;
        best = &f;
      }
    }
    if (best == nullptr) return;

    // Anticipation (deceptive idleness): if some flow just completed an IO,
    // has nothing queued, and its next request would deserve service before
    // `best`, hold off briefly — but only while the device stays busy.
    if (outstanding_ > 0) {
      Tick now = sim_.now();
      for (auto& [id, f] : flows_) {
        if (!f.queue.empty() || f.last_completion < 0) continue;
        if (now - f.last_completion < params_.anticipation &&
            f.last_finish < best_tag) {
          f.anticipating = true;
          if (!poke_scheduled_) {
            poke_scheduled_ = true;
            sim_.After(params_.anticipation, [this]() {
              poke_scheduled_ = false;
              Pump();
            });
          }
          return;
        }
      }
    }

    Tagged t = best->queue.front();
    best->queue.pop_front();
    vtime_ = std::max(vtime_, t.start_tag);
    ++outstanding_;
    SubmitToDevice(t.req);
  }
}

void FlashFqPolicy::OnDeviceCompletion(const IoRequest& req,
                                       const ssd::DeviceCompletion& dc,
                                       uint64_t /*tag*/) {
  --outstanding_;
  Flow& f = flows_[req.tenant];
  f.last_completion = sim_.now();
  Deliver(req, dc);
  Pump();
}

}  // namespace gimbal::baselines
