// FlashFQ-style policy (Shen & Park, USENIX ATC'13), ported per §5.1.
//
// Start-time fair queueing with throttled dispatch — SFQ(D):
//   * every request gets a start tag max(virtual_time, flow.last_finish)
//     and a finish tag start + cost/weight, with a *linear* size-based
//     cost model (writes cost a fixed multiple of reads);
//   * at most D requests are outstanding at the device; dispatch picks the
//     smallest start tag;
//   * virtual time advances to the start tag of the last dispatched IO;
//   * deceptive idleness is mitigated by anticipation: if the flow that
//     would be served next went briefly idle after a completion, dispatch
//     of *other* flows is held for a short anticipation window.
//
// Work-conserving and flow-control-free: under high consolidation its
// queues live at the device, which is why Fig 8 shows high tails, and its
// linear model cannot see SSD-condition-dependent costs (Fig 7: read and
// write bandwidths come out equal).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/io_policy.h"

namespace gimbal::baselines {

struct FlashFqParams {
  uint32_t depth = 32;              // D: outstanding IOs at the device
  double write_cost = 2.5;          // linear model: write multiplier
  double weight = 1.0;              // all tenants equal
  Tick anticipation = Microseconds(150);  // idle-wait window
};

class FlashFqPolicy : public core::PolicyBase {
 public:
  FlashFqPolicy(sim::Simulator& sim, ssd::BlockDevice& device,
                FlashFqParams params = {})
      : PolicyBase(sim, device), params_(params) {}

  void OnRequest(const IoRequest& req) override;
  std::string name() const override { return "flashfq"; }

  double virtual_time() const { return vtime_; }

 private:
  struct Tagged {
    IoRequest req;
    double start_tag = 0;
  };
  struct Flow {
    std::deque<Tagged> queue;
    double last_finish = 0;
    Tick last_completion = -1;   // for anticipation
    bool anticipating = false;
  };

  double Cost(const IoRequest& req) const {
    double pages = static_cast<double>((req.length + 4095) / 4096);
    return (req.type == IoType::kWrite ? params_.write_cost : 1.0) * pages /
           params_.weight;
  }

  void OnDeviceCompletion(const IoRequest& req,
                          const ssd::DeviceCompletion& dc,
                          uint64_t tag) override;
  void Pump();

  FlashFqParams params_;
  std::unordered_map<TenantId, Flow> flows_;
  uint32_t outstanding_ = 0;
  double vtime_ = 0;
  bool poke_scheduled_ = false;
};

}  // namespace gimbal::baselines
