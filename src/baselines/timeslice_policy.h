// Timeslice (Argon/CFQ-style) IO scheduler — the §2.3 strawman.
//
// Each backlogged tenant receives exclusive access to the device for a
// fixed time quantum; within its slice a tenant's IOs dispatch up to a
// bounded depth, and the slice rotates round-robin. This buys strong
// isolation on millisecond-scale disks, but on microsecond NVMe devices
// it "violates responsiveness under high consolidation" (§2.3): a tenant
// that just missed its slice waits (#tenants - 1) x quantum before its
// first IO moves, and single-tenant slices cannot exploit the SSD's
// internal parallelism across tenants.
//
// Included as an extra baseline beyond the paper's three ports, to back
// the §2.3 argument with numbers (see ablation_timeslice).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/io_policy.h"

namespace gimbal::baselines {

struct TimesliceParams {
  Tick quantum = Milliseconds(2);  // exclusive device time per tenant
  uint32_t depth = 32;             // outstanding IOs within a slice
};

class TimeslicePolicy : public core::PolicyBase {
 public:
  TimeslicePolicy(sim::Simulator& sim, ssd::BlockDevice& device,
                  TimesliceParams params = {})
      : PolicyBase(sim, device), params_(params) {}

  void OnRequest(const IoRequest& req) override;
  std::string name() const override { return "timeslice"; }

  TenantId current_tenant() const { return current_; }

 private:
  struct Flow {
    std::deque<IoRequest> queue;
    bool in_rotation = false;
  };

  void OnDeviceCompletion(const IoRequest& req,
                          const ssd::DeviceCompletion& dc,
                          uint64_t tag) override;
  void Pump();
  void StartSlice();
  void EndSlice();

  TimesliceParams params_;
  std::unordered_map<TenantId, Flow> flows_;
  std::deque<TenantId> rotation_;
  TenantId current_ = 0;
  bool slice_active_ = false;
  uint64_t slice_seq_ = 0;  // invalidates stale slice-end timers
  uint32_t outstanding_ = 0;
};

}  // namespace gimbal::baselines
