// ReFlex-style policy (Klimovic et al., ASPLOS'17), ported per §5.1.
//
// ReFlex schedules with an *offline-calibrated* request cost model: every
// IO costs tokens proportional to its size in pages, writes cost a fixed
// multiple of reads, and the device is assumed to supply tokens at a fixed
// calibrated rate. Tenants share that token rate through deficit
// round-robin. There is no flow control and no online recalibration — the
// two properties the paper shows hurt it (Fig 6: over-throttled writes on
// clean SSDs, capped large-IO bandwidth; Fig 8: high tails).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>

#include "core/io_policy.h"

namespace gimbal::baselines {

struct ReflexParams {
  // Token supply: calibrated 4 KiB random-read IOPS of the device
  // (tokens/sec; one token = one 4 KiB read-equivalent).
  double token_rate = 400e3;
  // Offline write cost: datasheet read/write IOPS ratio (same worst-case
  // number Gimbal uses as its *ceiling*, but ReFlex applies it always).
  double write_cost = 9.0;
  // DRR quantum, in tokens.
  double quantum = 32.0;
  // Token bucket cap (burst allowance), in tokens.
  double bucket_cap = 256.0;
};

class ReflexPolicy : public core::PolicyBase {
 public:
  ReflexPolicy(sim::Simulator& sim, ssd::BlockDevice& device,
               ReflexParams params = {})
      : PolicyBase(sim, device), params_(params) {}

  void OnRequest(const IoRequest& req) override;
  std::string name() const override { return "reflex"; }

  double TokenCost(const IoRequest& req) const {
    double pages = static_cast<double>((req.length + 4095) / 4096);
    return req.type == IoType::kWrite ? pages * params_.write_cost : pages;
  }

 private:
  struct Flow {
    std::deque<IoRequest> queue;
    double deficit = 0;
    bool in_round = false;
  };

  void OnDeviceCompletion(const IoRequest& req,
                          const ssd::DeviceCompletion& dc,
                          uint64_t tag) override;
  void Pump();
  void RefillTokens();
  void SchedulePoke(Tick delay);

  ReflexParams params_;
  std::unordered_map<TenantId, Flow> flows_;
  std::deque<TenantId> round_;  // DRR order over flows with queued IOs
  double tokens_ = 0;
  Tick last_refill_ = 0;
  bool refill_started_ = false;
  bool poke_scheduled_ = false;
};

}  // namespace gimbal::baselines
