// Figure 6: device utilization under 16 same-shape workers, for the four
// schemes x {clean,fragmented} x {read,write}. Clean uses 128 KiB IOs,
// fragmented 4 KiB (§5.2).
//
// Paper shape: Gimbal ~ FlashFQ in bandwidth on all four cases, ~2.4x /
// 6.6x over ReFlex on clean read/write, ~2.6x over Parda on fragmented
// read; Gimbal's average latency far below FlashFQ's (no flow control).
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Case {
  const char* label;
  SsdCondition cond;
  bool write;
  uint32_t io_bytes;
};

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 6 - Utilization with 16 workers (bandwidth & avg latency)",
      "Gimbal (SIGCOMM'21) Figure 6",
      "Gimbal ~ FlashFQ bandwidth everywhere, but with far lower latency; "
      "ReFlex collapses on clean writes (static cost model); Parda "
      "underutilizes fragmented reads");

  const Case cases[] = {
      {"C-R", SsdCondition::kClean, false, 131072},
      {"C-W", SsdCondition::kClean, true, 131072},
      {"F-R", SsdCondition::kFragmented, false, 4096},
      {"F-W", SsdCondition::kFragmented, true, 4096},
  };

  Table bw("Aggregated bandwidth (MB/s), 16 workers");
  bw.Columns({"case", "reflex", "flashfq", "parda", "gimbal"});
  Table lat("Average latency (us), 16 workers");
  lat.Columns({"case", "reflex", "flashfq", "parda", "gimbal"});

  for (const Case& c : cases) {
    std::vector<std::string> bw_row{c.label}, lat_row{c.label};
    for (Scheme s : workload::kAllSchemes) {
      TestbedConfig cfg = MicroConfig(s, c.cond);
      Testbed bed(cfg);
      const int workers = Quick() ? 8 : 16;
      for (int i = 0; i < workers; ++i) {
        FioSpec spec = PaperSpec(c.io_bytes, c.write,
                                 static_cast<uint64_t>(i) + 1);
        bed.AddWorker(spec);
      }
      if (Quick()) {
        bed.Run(Milliseconds(100), Milliseconds(200));
      } else {
        bed.Run(Milliseconds(400), Seconds(1));
      }
      bw_row.push_back(Table::Num(AggregateMBps(bed)));
      LatencyHistogram h = MergedLatency(
          bed, c.write ? IoType::kWrite : IoType::kRead);
      lat_row.push_back(Table::Num(h.mean() / 1000.0));
    }
    bw.Row(bw_row);
    lat.Row(lat_row);
  }
  bw.Print();
  lat.Print();
  return 0;
}
