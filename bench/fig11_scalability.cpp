// Figures 11 & 12: throughput and average read latency as the number of
// KV instances grows (Gimbal, same topology as Fig 10).
//
// Paper shape: A/B/D saturate around 20 instances, F around 16 (its
// read-modify-writes hit write limits first, latency +38% from 16->24);
// read-only C keeps scaling with nearly flat read latency.
#include "bench_util.h"

#include "kv/cluster.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::YcsbClient;

namespace {

constexpr int kSsds = 6;
// Quick (golden) runs shrink the per-instance dataset with the matrix.
inline uint64_t Records() { return Quick() ? 5'000 : 20'000; }

struct Point {
  double kiops;
  double avg_read_us;
};

Point RunOne(workload::YcsbWorkload wl, int instances) {
  KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.target.cores = kSsds;
  cfg.testbed.condition = SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.queue_impl = g_queue;
  cfg.testbed.threads = g_threads;
  cfg.testbed.run_label =
      std::string(workload::ToString(wl)) + ":" + std::to_string(instances);
  cfg.hba.backend_bytes = 256ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  KvCluster cluster(cfg);
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < instances; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(Records(), 1024);
    workload::YcsbSpec spec;
    spec.workload = wl;
    spec.record_count = Records();
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(
        std::make_unique<YcsbClient>(cluster.sim(), *inst.db, spec, 24));
  }
  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Quick() ? Milliseconds(100) : Milliseconds(250));
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) {
    obs->metrics.ResetRun(cfg.testbed.run_label);
  }
  const Tick measure = Quick() ? Milliseconds(250) : Milliseconds(500);
  cluster.sim().RunUntil(cluster.sim().now() + measure);
  uint64_t ops = 0;
  LatencyHistogram reads;
  for (auto& c : clients) {
    ops += c->stats().ops;
    reads.Merge(c->stats().read_latency);
  }
  return {static_cast<double>(ops) / ToSec(measure) / 1000.0,
          reads.mean() / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 11/12 - Scalability with KV instance count (Gimbal)",
      "Gimbal (SIGCOMM'21) Figures 11-12",
      "A/B/D saturate ~20 instances, F ~16 (read latency rises steeply "
      "beyond), C scales with flat latency");

  // Quick (golden) config: the {A,C} x {4,8} corner of the matrix — enough
  // to pin the write-limited vs read-only scaling contrast.
  std::vector<workload::YcsbWorkload> workloads = {
      workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
      workload::YcsbWorkload::kC, workload::YcsbWorkload::kD,
      workload::YcsbWorkload::kF};
  std::vector<int> sizes = {4, 8, 12, 16, 20, 24};
  std::vector<std::string> cols = {"instances", "YCSB-A", "YCSB-B", "YCSB-C",
                                   "YCSB-D", "YCSB-F"};
  if (Quick()) {
    workloads = {workload::YcsbWorkload::kA, workload::YcsbWorkload::kC};
    sizes = {4, 8};
    cols = {"instances", "YCSB-A", "YCSB-C"};
  }

  Table thpt("Fig 11: Throughput (KIOPS) vs instances");
  thpt.Columns(cols);
  Table lat("Fig 12: Average read latency (us) vs instances");
  lat.Columns(cols);
  for (int n : sizes) {
    std::vector<std::string> r1{std::to_string(n)}, r2{std::to_string(n)};
    for (auto wl : workloads) {
      Point p = RunOne(wl, n);
      r1.push_back(Table::Num(p.kiops));
      r2.push_back(Table::Num(p.avg_read_us));
    }
    thpt.Row(r1);
    lat.Row(r2);
  }
  thpt.Print();
  lat.Print();
  return 0;
}
