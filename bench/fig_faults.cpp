// fig_faults: SLO isolation under injected faults (docs/FAULTS.md).
//
// Four tenants on a two-SSD Gimbal JBOF: A and B share the healthy SSD 0;
// C and D share SSD 1, which suffers a latency stall, a media-error burst,
// a brief fabric link flap, a full failure and a recovery, while D crashes
// abruptly mid-run (no disconnect capsule). The control run repeats the
// identical setup with no faults.
//
// Expected shape: A and B stay within 10% of their no-fault bandwidth —
// faulted completions are kept out of the rate controller's EWMAs and a
// failed SSD drains fast instead of clogging its pipeline — while every IO
// the faulted tenants admitted reaches exactly one terminal status (the
// per-tenant balance initiator.submitted == client.completed +
// client.failed closes after the drain; nothing is stuck or leaked).
//
// Fault knobs (defaults in parentheses; see docs/EXPERIMENTS.md):
//   --fault-media-p=P     media-error probability per IO in the burst (0.05)
//   --fault-stall-ms=N    extra device latency during the stall (2)
//   --fault-link-drop=P   message drop probability during the flap (0.01)
//   --fault-seed=N        fault RNG seed (1)
#include <cstring>

#include "bench_util.h"
#include "fault/fault.h"
#include "obs/schema.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct FaultKnobs {
  double media_p = 0.05;
  double stall_ms = 2.0;
  double link_drop = 0.01;
  uint64_t seed = 1;
};

bool TakeDouble(const char* arg, const char* prefix, double* out) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = std::atof(arg + n);
  return true;
}

// Strip --fault-* flags (consumed here) so ObsSession sees only its own.
FaultKnobs ParseFaultFlags(int* argc, char** argv) {
  FaultKnobs k;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    double v = 0;
    if (TakeDouble(argv[i], "--fault-media-p=", &v)) {
      k.media_p = v;
    } else if (TakeDouble(argv[i], "--fault-stall-ms=", &v)) {
      k.stall_ms = v;
    } else if (TakeDouble(argv[i], "--fault-link-drop=", &v)) {
      k.link_drop = v;
    } else if (TakeDouble(argv[i], "--fault-seed=", &v)) {
      k.seed = static_cast<uint64_t>(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return k;
}

// Quick (golden) config halves the measurement window and every fault
// window with it; the isolation and balance self-checks still hold.
inline Tick Window() { return Quick() ? Milliseconds(250) : Milliseconds(500); }
inline Tick Scaled(Tick t) { return Quick() ? t / 2 : t; }

constexpr int kTenants = 4;
const char* kNames[kTenants] = {"A (ssd0)", "B (ssd0)", "C (ssd1)",
                                "D (ssd1, crash)"};

struct TenantResult {
  double mbps = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t late = 0;
  uint64_t submitted = 0;
  uint64_t terminal = 0;  // completed + failed, from the obs counters
};

struct RunResult {
  TenantResult tenant[kTenants];
  fault::FaultInjector::FaultCounters faults;
  uint64_t sessions_reaped = 0;
  size_t leftover_tenants = 0;  // scheduler state after the drain
};

RunResult RunScenario(obs::Observability& obs, bool faulted,
                      const FaultKnobs& k) {
  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, SsdCondition::kClean);
  cfg.obs = &obs;
  cfg.run_label = faulted ? "faulted" : "nofault";
  cfg.num_ssds = 2;
  cfg.fault_seed = k.seed;
  // Client-side fault tolerance + target-side crash detection are active
  // in both runs so the control differs only in the faults themselves.
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  if (faulted) {
    cfg.faults.stalls.push_back(
        {1, Scaled(Milliseconds(100)), Scaled(Milliseconds(150)),
         static_cast<Tick>(k.stall_ms * 1e6)});
    cfg.faults.media_errors.push_back(
        {1, Scaled(Milliseconds(180)), Scaled(Milliseconds(230)), k.media_p,
         Microseconds(500)});
    if (k.link_drop > 0) {
      cfg.faults.link_flaps.push_back(
          {Scaled(Milliseconds(190)), Scaled(Milliseconds(210)), k.link_drop,
           Microseconds(20)});
    }
    cfg.faults.failures.push_back(
        {1, Scaled(Milliseconds(300)), Scaled(Milliseconds(350))});
  }
  Testbed bed(cfg);
  for (int i = 0; i < kTenants; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.seed = 10 + static_cast<uint64_t>(i) + g_seed;
    bed.AddWorker(spec, i < 2 ? 0 : 1);
  }
  if (faulted) {
    fabric::Initiator& d = bed.workers()[3]->initiator();
    bed.faults().ScheduleTenantCrash(Scaled(Milliseconds(250)), d.tenant(),
                                     [&d]() { d.Crash(); });
  }
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Window());
  for (auto& w : bed.workers()) w->Stop();
  // Quiesce: graceful disconnects stop the keepalives, the session reaper
  // self-terminates, and every outstanding IO reaches a terminal status.
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();

  RunResult r;
  for (int i = 0; i < kTenants; ++i) {
    FioWorker& w = *bed.workers()[i];
    fabric::Initiator& ini = w.initiator();
    TenantResult& t = r.tenant[i];
    t.mbps = BytesToMiB(w.stats().total_bytes()) / ToSec(Window());
    t.failed = w.stats().failed_ios;
    t.retries = ini.retries();
    t.timeouts = ini.timeouts();
    t.late = ini.late_completions();
    const obs::Labels l = obs::Labels::TenantSsd(
        static_cast<int32_t>(ini.tenant()), ini.pipeline());
    t.submitted =
        obs.metrics.GetCounter(obs::schema::kInitiatorSubmitted, l).value();
    t.terminal =
        obs.metrics.GetCounter(obs::schema::kClientCompleted, l).value() +
        obs.metrics.GetCounter(obs::schema::kClientFailed, l).value();
  }
  r.faults = bed.faults().counters();
  r.sessions_reaped = bed.target().sessions_reaped();
  for (int s = 0; s < cfg.num_ssds; ++s) {
    r.leftover_tenants += bed.gimbal_switch(s)->scheduler().tenant_count();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  FaultKnobs knobs = ParseFaultFlags(&argc, argv);
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "fig_faults - SLO isolation under SSD/fabric faults (Gimbal, 2 SSDs)",
      "fault-injection extension (docs/FAULTS.md); not a paper figure",
      "healthy-SSD tenants within 10% of no-fault bandwidth; every "
      "admitted IO of the faulted tenants reaches a terminal status");

  // One registry for both runs; run labels keep the series apart.
  obs::Observability local_obs;
  obs::Observability& obs =
      CurrentObs() ? *CurrentObs() : local_obs;

  const RunResult control = RunScenario(obs, /*faulted=*/false, knobs);
  const RunResult faulted = RunScenario(obs, /*faulted=*/true, knobs);

  Table t("Per-tenant bandwidth and fault handling (4KB rand read, QD16)");
  t.Columns({"tenant", "nofault_mbps", "fault_mbps", "delta_pct", "failed",
             "retries", "timeouts", "late", "balance"});
  bool balanced = true;
  bool isolated = true;
  for (int i = 0; i < kTenants; ++i) {
    const TenantResult& c = control.tenant[i];
    const TenantResult& f = faulted.tenant[i];
    const double delta =
        c.mbps > 0 ? (f.mbps - c.mbps) / c.mbps * 100.0 : 0.0;
    const bool bal = f.submitted == f.terminal && c.submitted == c.terminal;
    balanced = balanced && bal;
    if (i < 2 && delta < -10.0) isolated = false;
    t.Row({kNames[i], Table::Num(c.mbps), Table::Num(f.mbps),
           Table::Num(delta, 1), Table::Num(double(f.failed), 0),
           Table::Num(double(f.retries), 0), Table::Num(double(f.timeouts), 0),
           Table::Num(double(f.late), 0), bal ? "ok" : "LEAK"});
  }
  t.Print();

  std::printf(
      "\nInjected: media_errors=%llu device_failed=%llu stalled=%llu "
      "link_dropped=%llu link_delayed=%llu crashes=%llu\n",
      static_cast<unsigned long long>(faulted.faults.media_errors),
      static_cast<unsigned long long>(faulted.faults.device_failed_ios),
      static_cast<unsigned long long>(faulted.faults.stalled_ios),
      static_cast<unsigned long long>(faulted.faults.link_dropped),
      static_cast<unsigned long long>(faulted.faults.link_delayed),
      static_cast<unsigned long long>(faulted.faults.crashes));
  std::printf("Crashed sessions reaped by keepalive timeout: %llu\n",
              static_cast<unsigned long long>(faulted.sessions_reaped));
  std::printf("Scheduler tenant state left after drain: %zu\n",
              faulted.leftover_tenants);
  std::printf("Healthy-SSD isolation (A/B within 10%%): %s\n",
              isolated ? "PASS" : "FAIL");
  std::printf("No IO lost (submitted == completed+failed, all tenants): %s\n",
              balanced ? "PASS" : "FAIL");
  return (isolated && balanced) ? 0 : 1;
}
