// Figure 21 (Appendix D): read stream bandwidth standalone vs mixed with
// a same-shape write stream, sweeping the IO size.
//
// Paper shape: mixing costs the read stream ~60-73% of its standalone
// bandwidth across sizes.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double ReadMBps(uint32_t io_bytes, bool sequential, bool with_writer) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  Testbed bed(cfg);
  FioSpec rd;
  rd.io_bytes = io_bytes;
  rd.sequential = sequential;
  rd.queue_depth = io_bytes >= 131072 ? 8 : 32;
  rd.seed = 1 + g_seed;
  FioWorker& w = bed.AddWorker(rd);
  if (with_writer) {
    FioSpec wr = rd;
    wr.read_ratio = 0.0;
    wr.seed = 2 + g_seed;
    bed.AddWorker(wr);
  }
  bed.Run(Milliseconds(200), Milliseconds(500));
  return WorkerMBps(w, bed.measured());
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 21 - Read bandwidth standalone vs mixed with writes",
      "Gimbal (SIGCOMM'21) Figure 21 / Appendix D",
      "read keeps only ~27-39% of standalone bandwidth when a same-shape "
      "write stream joins");

  Table t("Read-stream bandwidth (MB/s), vanilla target, clean SSD");
  t.Columns({"io_size", "rnd_alone", "rnd_mixed", "seq_alone", "seq_mixed"});
  for (uint32_t kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    uint32_t bytes = kb * 1024;
    t.Row({std::to_string(kb) + "KB",
           Table::Num(ReadMBps(bytes, false, false)),
           Table::Num(ReadMBps(bytes, false, true)),
           Table::Num(ReadMBps(bytes, true, false)),
           Table::Num(ReadMBps(bytes, true, true))});
  }
  t.Print();
  return 0;
}
