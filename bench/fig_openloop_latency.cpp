// Extension bench: open-loop latency vs offered load (the classic
// throughput-latency curve behind Fig 17's timeline). Poisson arrivals at
// a swept rate against one clean SSD, vanilla vs Gimbal.
//
// Expectation: both track the device comfortably below the knee
// (~400 KIOPS for 4 KiB reads); past it the vanilla open-loop p99
// explodes unboundedly while Gimbal saturates at the paced rate with
// bounded device latency (excess arrivals queue at the ingress instead).
#include "bench_util.h"

#include "workload/openloop.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Point {
  double kiops;
  double p99_us;
  double p999_us;
};

Point Run(Scheme scheme, double offered_iops) {
  TestbedConfig cfg = MicroConfig(scheme, SsdCondition::kClean);
  Testbed bed(cfg);
  fabric::Initiator& init = bed.AddInitiator(0);
  workload::OpenLoopSpec spec;
  spec.offered_iops = offered_iops;
  spec.region_bytes = bed.device(0).capacity_bytes();
  spec.max_outstanding = 8192;
  workload::OpenLoopWorker w(bed.sim(), init, spec);
  w.Start();
  bed.sim().RunUntil(Milliseconds(300));
  w.stats().Reset();
  bed.sim().RunUntil(Milliseconds(800));
  Tick window = Milliseconds(500);
  return {static_cast<double>(w.stats().total_ios()) / ToSec(window) / 1000.0,
          static_cast<double>(w.stats().read_latency.p99()) / 1000.0,
          static_cast<double>(w.stats().read_latency.p999()) / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Extension - open-loop latency vs offered load (4KB random read)",
      "companion to Gimbal (SIGCOMM'21) Fig 17 / Appendix B",
      "past the ~400 KIOPS knee, vanilla open-loop latency explodes; "
      "Gimbal bounds device latency and sheds the excess to the ingress");

  Table t("Throughput and read latency vs offered load");
  t.Columns({"offered_kiops", "van_kiops", "van_p99_us", "van_p999_us",
             "gim_kiops", "gim_p99_us", "gim_p999_us"});
  for (double offered : {50e3, 100e3, 200e3, 300e3, 380e3, 420e3, 500e3}) {
    Point v = Run(Scheme::kVanilla, offered);
    Point g = Run(Scheme::kGimbal, offered);
    t.Row({Table::Num(offered / 1000, 0), Table::Num(v.kiops),
           Table::Num(v.p99_us), Table::Num(v.p999_us), Table::Num(g.kiops),
           Table::Num(g.p99_us), Table::Num(g.p999_us)});
  }
  t.Print();
  return 0;
}
