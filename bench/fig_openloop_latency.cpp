// Extension bench: the open-loop suite.
//
// Part 1 — the classic throughput-latency curve behind Fig 17's timeline:
// Poisson arrivals at a swept rate against one clean SSD, vanilla vs
// Gimbal. Past the ~400 KIOPS knee the vanilla open-loop p99 explodes
// unboundedly while Gimbal saturates at the paced rate with bounded device
// latency (excess arrivals queue at the ingress instead).
//
// Part 2 — the tenant-scale scenario suite (ROADMAP item 3): an
// OpenLoopFleet drives a large session population (100k concurrent in the
// full run; a scaled-down deterministic config under --quick for the
// golden harness) through four regimes:
//   steady   Poisson arrivals, heavy-tailed (Pareto) per-session rates
//   burst    MMPP storm: rate x8 for ~10% of the time
//   diurnal  sinusoidal swing of the whole population's offered load
//   churn    exponential session lifetimes: a rolling connect/disconnect
//            storm at full population
// Each scenario self-checks: the invariant checker's end-of-run balances,
// every session drained, the target session table empty.
//
// Part 3 — scheduler dispatch cost vs *total* tenant population (full run
// or --bench-json only: wall-clock timings are not golden material). A
// DrrScheduler is loaded with T registered tenants of which 64 are active;
// ns/dispatch must stay flat as T grows 1k -> 100k, demonstrating that
// dispatch is O(active tenants), not O(total) — the point of the arena
// refactor.
//
// --bench-json=PATH writes the machine-readable results table
// (BENCH_openloop.json in the repo root is a committed full-run snapshot).
#include "bench_util.h"

#include <chrono>
#include <cstring>

#include "core/drr_scheduler.h"
#include "core/write_cost.h"
#include "workload/fleet.h"
#include "workload/openloop.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

// --- Part 1: latency vs offered load ---------------------------------------

struct Point {
  double kiops;
  double p99_us;
  double p999_us;
};

Point RunSweep(Scheme scheme, double offered_iops) {
  TestbedConfig cfg = MicroConfig(scheme, SsdCondition::kClean);
  Testbed bed(cfg);
  fabric::Initiator& init = bed.AddInitiator(0);
  workload::OpenLoopSpec spec;
  spec.offered_iops = offered_iops;
  spec.region_bytes = bed.device(0).capacity_bytes();
  spec.max_outstanding = 8192;
  workload::OpenLoopWorker w(bed.sim(), init, spec);
  w.Start();
  const Tick warmup = Quick() ? Milliseconds(100) : Milliseconds(300);
  const Tick window = Quick() ? Milliseconds(150) : Milliseconds(500);
  bed.sim().RunUntil(warmup);
  w.stats().Reset();
  bed.sim().RunUntil(warmup + window);
  return {static_cast<double>(w.stats().total_ios()) / ToSec(window) / 1000.0,
          static_cast<double>(w.stats().read_latency.p99()) / 1000.0,
          static_cast<double>(w.stats().read_latency.p999()) / 1000.0};
}

// --- Part 2: tenant-scale scenario suite -----------------------------------

struct ScenarioResult {
  std::string name;
  uint64_t sessions = 0;  // concurrent seats
  uint64_t connects = 0;
  uint64_t disconnects = 0;
  double kiops = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t slo_windows = 0;
  uint64_t slo_violated = 0;
  uint64_t dropped = 0;
  bool drained = false;
};

ScenarioResult RunScenario(const std::string& name,
                           workload::FleetSpec spec) {
  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, SsdCondition::kClean);
  cfg.num_ssds = 2;  // sharded engine: churn must replay identically at any
                     // thread count (golden .t2/.t4 variants pin this)
  Testbed bed(cfg);
  workload::OpenLoopFleet fleet(bed, spec);
  fleet.Start();
  const Tick measure = Quick() ? Milliseconds(60) : Milliseconds(250);
  bed.sim().RunUntil(spec.rampup + measure);
  fleet.Stop();
  // Drain to idle: retired initiators wait out their in-flight tail (under
  // a churn storm the capsule backlog alone can outlast any fixed
  // deadline), then the sweep reclaims them and the event queue empties.
  bed.sim().Run();

  ScenarioResult r;
  r.name = name;
  r.sessions = spec.sessions;
  r.connects = fleet.connects();
  r.disconnects = fleet.disconnects();
  const workload::OpenLoopFleet::Totals totals = fleet.TotalStats();
  const double secs = ToSec(spec.rampup + measure);
  r.kiops = static_cast<double>(totals.stats.total_ios()) / secs / 1000.0;
  LatencyHistogram lat = totals.stats.read_latency;
  lat.Merge(totals.stats.write_latency);
  r.p99_us = static_cast<double>(lat.p99()) / 1000.0;
  r.p999_us = static_cast<double>(lat.p999()) / 1000.0;
  fleet.slo().FinalizeWindows();
  r.slo_windows = fleet.slo().windows();
  r.slo_violated = fleet.slo().windows_violated();
  r.dropped = totals.dropped;
  if (CurrentObs()) fleet.slo().Export(CurrentObs()->metrics);

  // Self-check: everything the scenario churned must be gone — no live or
  // draining sessions, an empty target session table, zero-balance
  // checker ledgers. The testbed's checker is fail-fast, so any invariant
  // breach already aborted long before this line.
  const size_t undrained = fleet.SweepGraveyard();
  r.drained = fleet.active_sessions() == 0 && undrained == 0 &&
              bed.target().live_sessions() == 0 &&
              bed.checker().CheckDrained();
  if (!r.drained) {
    std::fprintf(stderr,
                 "error: scenario %s: active=%zu draining=%zu "
                 "target_sessions=%zu\n",
                 name.c_str(), fleet.active_sessions(), undrained,
                 bed.target().live_sessions());
  }
  return r;
}

workload::FleetSpec BaseFleetSpec() {
  workload::FleetSpec s;
  s.sessions = Quick() ? 2000 : 100000;
  s.rates.dist = workload::RateDist::kPareto;
  s.rates.mean_iops = Quick() ? 20.0 : 2.0;
  s.io_bytes = 4096;
  s.max_outstanding = 64;
  s.rampup = Quick() ? Milliseconds(10) : Milliseconds(50);
  s.seed = 1 + g_seed;
  s.slo.read_p99 = Milliseconds(1);
  s.slo.read_p999 = Milliseconds(5);
  s.slo.write_p99 = Milliseconds(2);
  s.slo.write_p999 = Milliseconds(10);
  s.slo.window = Milliseconds(10);
  return s;
}

// --- Part 3: dispatch cost vs total tenant population ----------------------

struct DispatchPoint {
  uint64_t total_tenants;
  int active;
  double ns_per_dispatch;
};

DispatchPoint MeasureDispatch(uint64_t total_tenants, int active) {
  core::GimbalParams params;
  core::WriteCostEstimator cost(params);
  core::DrrScheduler drr(params, cost);
  // Register the full population; all but `active` stay idle forever.
  for (uint64_t t = 1; t <= total_tenants; ++t) {
    drr.GetTenant(static_cast<TenantId>(t));
  }
  IoRequest req;
  req.type = IoType::kRead;
  req.length = 4096;
  uint64_t next_id = 1;
  uint64_t done = 0;
  const uint64_t kIters = 200000;
  // Warm one batch so steady-state slot state is established before timing.
  auto batch = [&]() {
    for (int a = 0; a < active; ++a) {
      req.tenant = static_cast<TenantId>(1 + a);
      req.id = next_id++;
      drr.Enqueue(req);
    }
    while (auto s = drr.Dequeue()) {
      drr.OnCompletion(s->req.tenant, s->slot_id);
      ++done;
    }
  };
  batch();
  done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < kIters) batch();
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(done);
  return {total_tenants, active, ns};
}

}  // namespace

int main(int argc, char** argv) {
  // Peel --bench-json=PATH off before ObsSession sees (and warns about) it.
  std::string bench_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const char* prefix = "--bench-json=";
    if (i > 0 && std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      bench_json = argv[i] + std::strlen(prefix);
    } else {
      args.push_back(argv[i]);
    }
  }
  ObsSession obs_session(static_cast<int>(args.size()), args.data());

  workload::PrintHeader(
      "Extension - open-loop suite: latency vs load, tenant-scale scenarios",
      "companion to Gimbal (SIGCOMM'21) Fig 17 / Appendix B",
      "past the ~400 KIOPS knee, vanilla open-loop latency explodes; "
      "Gimbal bounds device latency and sheds the excess to the ingress; "
      "100k-session fleets sustain connect/burst/churn storms with "
      "scheduler cost independent of total tenant count");

  Table t("Throughput and read latency vs offered load");
  t.Columns({"offered_kiops", "van_kiops", "van_p99_us", "van_p999_us",
             "gim_kiops", "gim_p99_us", "gim_p999_us"});
  std::vector<double> sweep =
      Quick() ? std::vector<double>{100e3, 380e3, 500e3}
              : std::vector<double>{50e3, 100e3, 200e3, 300e3, 380e3, 420e3,
                                    500e3};
  for (double offered : sweep) {
    Point v = RunSweep(Scheme::kVanilla, offered);
    Point g = RunSweep(Scheme::kGimbal, offered);
    t.Row({Table::Num(offered / 1000, 0), Table::Num(v.kiops),
           Table::Num(v.p99_us), Table::Num(v.p999_us), Table::Num(g.kiops),
           Table::Num(g.p99_us), Table::Num(g.p999_us)});
  }
  t.Print();

  std::vector<ScenarioResult> results;
  {
    workload::FleetSpec steady = BaseFleetSpec();
    results.push_back(RunScenario("steady", steady));

    workload::FleetSpec burst = BaseFleetSpec();
    burst.arrival.burst_multiplier = 8.0;
    burst.arrival.burst_fraction = 0.1;
    burst.arrival.burst_mean_duration = Milliseconds(2);
    results.push_back(RunScenario("burst", burst));

    workload::FleetSpec diurnal = BaseFleetSpec();
    diurnal.arrival.diurnal_period =
        Quick() ? Milliseconds(40) : Milliseconds(150);
    diurnal.arrival.diurnal_amplitude = 0.6;
    results.push_back(RunScenario("diurnal", diurnal));

    workload::FleetSpec churn = BaseFleetSpec();
    churn.session_lifetime_mean = Quick() ? Milliseconds(30) : Milliseconds(100);
    results.push_back(RunScenario("churn", churn));
  }

  Table s("Tenant-scale open-loop scenarios (Gimbal, 2 SSDs)");
  s.Columns({"scenario", "sessions", "connects", "disconnects", "kiops",
             "p99_us", "p999_us", "slo_windows", "slo_viol", "shed",
             "drained"});
  for (const ScenarioResult& r : results) {
    s.Row({r.name, std::to_string(r.sessions), std::to_string(r.connects),
           std::to_string(r.disconnects), Table::Num(r.kiops),
           Table::Num(r.p99_us), Table::Num(r.p999_us),
           std::to_string(r.slo_windows), std::to_string(r.slo_violated),
           std::to_string(r.dropped), r.drained ? "PASS" : "FAIL"});
  }
  s.Print();
  for (const ScenarioResult& r : results) {
    if (!r.drained) {
      std::fprintf(stderr, "error: scenario %s did not drain cleanly\n",
                   r.name.c_str());
      return 1;
    }
  }

  // Wall-clock timings only exist outside the deterministic golden run.
  std::vector<DispatchPoint> dispatch;
  if (!Quick() || !bench_json.empty()) {
    for (uint64_t total : {uint64_t{1000}, uint64_t{10000},
                           uint64_t{100000}}) {
      dispatch.push_back(MeasureDispatch(total, 64));
    }
  }
  if (!Quick() && !dispatch.empty()) {
    Table d("DRR dispatch cost vs registered tenant population (64 active)");
    d.Columns({"total_tenants", "active", "ns_per_dispatch"});
    for (const DispatchPoint& p : dispatch) {
      d.Row({std::to_string(p.total_tenants), std::to_string(p.active),
             Table::Num(p.ns_per_dispatch)});
    }
    d.Print();
  }

  if (!bench_json.empty()) {
    std::FILE* f = std::fopen(bench_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: could not write %s\n", bench_json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig_openloop_latency\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", Quick() ? "quick" : "full");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& r = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"sessions\": %llu, \"connects\": %llu, "
          "\"disconnects\": %llu, \"kiops\": %.1f, \"p99_us\": %.1f, "
          "\"p999_us\": %.1f, \"slo_windows\": %llu, "
          "\"slo_windows_violated\": %llu, \"shed_arrivals\": %llu, "
          "\"drained\": %s}%s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.sessions),
          static_cast<unsigned long long>(r.connects),
          static_cast<unsigned long long>(r.disconnects), r.kiops, r.p99_us,
          r.p999_us, static_cast<unsigned long long>(r.slo_windows),
          static_cast<unsigned long long>(r.slo_violated),
          static_cast<unsigned long long>(r.dropped),
          r.drained ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"dispatch_cost\": [\n");
    for (size_t i = 0; i < dispatch.size(); ++i) {
      const DispatchPoint& p = dispatch[i];
      std::fprintf(f,
                   "    {\"total_tenants\": %llu, \"active\": %d, "
                   "\"ns_per_dispatch\": %.1f}%s\n",
                   static_cast<unsigned long long>(p.total_tenants), p.active,
                   p.ns_per_dispatch, i + 1 < dispatch.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
