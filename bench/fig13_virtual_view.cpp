// Figure 13: application-level gains from the per-SSD virtual view (§3.7,
// §5.6). 8 KV instances over one JBOF (4 SSDs, Gimbal target), comparing:
//   vanilla    - no client-side optimizations (no credit throttle, no LB)
//   +FC        - credit-based IO rate limiter on
//   +FC+LB     - plus replica read load balancing by credits
//
// Paper shape: the rate limiter cuts p99.9 read latency ~28% on average,
// the load balancer another ~19%.
#include "bench_util.h"

#include "kv/cluster.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::YcsbClient;

namespace {

constexpr int kInstances = 8;
constexpr int kSsds = 4;
constexpr uint64_t kRecords = 20'000;

double P999ReadUs(workload::YcsbWorkload wl, bool flow_control,
                  bool load_balance) {
  KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.target.cores = kSsds;
  cfg.testbed.condition = SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.threads = g_threads;
  cfg.testbed.run_label = std::string(workload::ToString(wl)) +
                          (flow_control ? ":fc" : ":plain") +
                          (load_balance ? "+lb" : "");
  cfg.hba.backend_bytes = 256ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  cfg.load_balance_reads = load_balance;
  cfg.throttle = flow_control ? fabric::ThrottleMode::kCredit
                              : fabric::ThrottleMode::kNone;
  KvCluster cluster(cfg);
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < kInstances; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(kRecords, 1024);
    workload::YcsbSpec spec;
    spec.workload = wl;
    spec.record_count = kRecords;
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(
        std::make_unique<YcsbClient>(cluster.sim(), *inst.db, spec, 32));
  }
  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(250));
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) {
    obs->metrics.ResetRun(cfg.testbed.run_label);
  }
  const Tick measure = Milliseconds(700);
  cluster.sim().RunUntil(cluster.sim().now() + measure);
  LatencyHistogram reads;
  for (auto& c : clients) reads.Merge(c->stats().read_latency);
  return static_cast<double>(reads.p999()) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 13 - Virtual-view optimizations (8 instances, 1 JBOF)",
      "Gimbal (SIGCOMM'21) Figure 13",
      "credit rate limiter cuts p99.9 read latency ~28%; read load "
      "balancing cuts a further ~19%");

  const workload::YcsbWorkload workloads[] = {
      workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
      workload::YcsbWorkload::kC, workload::YcsbWorkload::kD,
      workload::YcsbWorkload::kF};

  Table t("p99.9 read latency (us)");
  t.Columns({"workload", "vanilla", "vanilla+FC", "vanilla+FC+LB"});
  for (auto wl : workloads) {
    t.Row({ToString(wl), Table::Num(P999ReadUs(wl, false, false)),
           Table::Num(P999ReadUs(wl, true, false)),
           Table::Num(P999ReadUs(wl, true, true))});
  }
  t.Print();
  return 0;
}
