// Ablation study (beyond the paper's figures): how much each of Gimbal's
// design choices contributes, isolating the mechanisms §3 motivates.
//
//   dynamic threshold  - vs a fixed 2 ms threshold (§3.2 argues fixed
//                        thresholds miss small-IO congestion)
//   dual token bucket  - vs a single aggregate bucket (Appendix C.1:
//                        single bucket submits writes at the read rate)
//   dynamic write cost - vs the static worst-case cost (§3.4: static cost
//                        forfeits the SSD's write-buffer optimization)
//   aggressive probe   - beta=8 vs beta=1 recovery after pattern shifts
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct MixResult {
  double rd_mbps;
  double wr_mbps;
  double rd_p99_us;
  double wr_p99_us;
};

MixResult RunMix(core::GimbalParams params, SsdCondition cond,
                 uint32_t io_bytes) {
  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, cond);
  cfg.gimbal = params;
  Testbed bed(cfg);
  for (int i = 0; i < 8; ++i) {
    bed.AddWorker(PaperSpec(io_bytes, false, static_cast<uint64_t>(i) + 1));
  }
  for (int i = 0; i < 8; ++i) {
    bed.AddWorker(PaperSpec(io_bytes, true, static_cast<uint64_t>(i) + 101));
  }
  // Quick (golden) config: shorter windows, full variant matrix.
  if (Quick()) {
    bed.Run(Milliseconds(100), Milliseconds(250));
  } else {
    bed.Run(Milliseconds(400), Seconds(1));
  }
  uint64_t rd = 0, wr = 0;
  for (size_t i = 0; i < 8; ++i) rd += bed.workers()[i]->stats().total_bytes();
  for (size_t i = 8; i < 16; ++i) wr += bed.workers()[i]->stats().total_bytes();
  LatencyHistogram rl = MergedLatency(bed, IoType::kRead, 0, 8);
  LatencyHistogram wl = MergedLatency(bed, IoType::kWrite, 8, 8);
  return {BytesToMiB(rd) / ToSec(bed.measured()),
          BytesToMiB(wr) / ToSec(bed.measured()),
          static_cast<double>(rl.p99()) / 1000.0,
          static_cast<double>(wl.p99()) / 1000.0};
}

void Report(Table& t, const char* label, const MixResult& r) {
  t.Row({label, Table::Num(r.rd_mbps), Table::Num(r.wr_mbps),
         Table::Num(r.rd_p99_us), Table::Num(r.wr_p99_us)});
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Ablation - contribution of Gimbal's design choices",
      "Gimbal (SIGCOMM'21) §3.2-3.4 design arguments (extension)",
      "full Gimbal should dominate each crippled variant on the axis its "
      "mechanism targets");

  core::GimbalParams full;

  {
    Table t("Fragmented SSD, 8 x 4KB read + 8 x 4KB write");
    t.Columns({"variant", "rd_MBps", "wr_MBps", "rd_p99_us", "wr_p99_us"});
    Report(t, "full gimbal", RunMix(full, SsdCondition::kFragmented, 4096));

    core::GimbalParams fixed_thresh = full;  // ~fixed 2ms threshold
    fixed_thresh.thresh_min = Microseconds(1990);
    fixed_thresh.thresh_max = Microseconds(2010);
    fixed_thresh.alpha_t = 0.0;
    Report(t, "fixed 2ms threshold",
           RunMix(fixed_thresh, SsdCondition::kFragmented, 4096));

    core::GimbalParams static_cost = full;  // write cost pinned at worst
    static_cost.write_cost_delta = 0.0;
    Report(t, "static write cost",
           RunMix(static_cost, SsdCondition::kFragmented, 4096));

    core::GimbalParams slow_probe = full;
    slow_probe.beta = 1.0;
    Report(t, "beta=1 (slow probe)",
           RunMix(slow_probe, SsdCondition::kFragmented, 4096));
    t.Print();
  }

  {
    Table t("Clean SSD, 8 x 128KB read + 8 x 128KB write");
    t.Columns({"variant", "rd_MBps", "wr_MBps", "rd_p99_us", "wr_p99_us"});
    Report(t, "full gimbal", RunMix(full, SsdCondition::kClean, 131072));

    core::GimbalParams static_cost = full;
    static_cost.write_cost_delta = 0.0;
    Report(t, "static write cost",
           RunMix(static_cost, SsdCondition::kClean, 131072));

    // Single-bucket approximation: one huge shared cap means writes draw
    // from the aggregate rate (the failure mode Appendix C.1 describes).
    core::GimbalParams single_bucket = full;
    single_bucket.bucket_cap_bytes = 16ull << 20;
    Report(t, "quasi-single bucket (16MB cap)",
           RunMix(single_bucket, SsdCondition::kClean, 131072));
    t.Print();
  }
  return 0;
}
