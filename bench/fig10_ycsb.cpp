// Figure 10: RocksDB-like instances on YCSB A/B/C/D/F across the four
// schemes — aggregated throughput, average read latency, p99.9 read
// latency. The paper runs 24 instances over 3 JBOFs (12 fragmented SSDs);
// we scale the keyspace (20K x 1KB per instance) and keep the topology.
//
// Paper shape: Gimbal beats ReFlex/Parda/FlashFQ by ~1.7x/2.1x/1.3x
// throughput on average, with ~20-55% lower average and ~27-48% lower
// p99.9 read latency; update-heavy A and F gain the most, read-only C the
// least.
#include "bench_util.h"

#include "kv/cluster.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::YcsbClient;

namespace {

constexpr int kInstances = 24;
constexpr int kSsds = 6;
constexpr uint64_t kRecords = 20'000;

struct RunResult {
  double kiops;
  double avg_read_us;
  double p999_read_us;
};

RunResult RunOne(Scheme scheme, workload::YcsbWorkload wl) {
  KvClusterConfig cfg;
  cfg.testbed.scheme = scheme;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.target.cores = kSsds;
  cfg.testbed.condition = SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.threads = g_threads;
  cfg.testbed.run_label =
      std::string(ToString(scheme)) + ":" + workload::ToString(wl);
  cfg.hba.backend_bytes = 256ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  KvCluster cluster(cfg);

  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < kInstances; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(kRecords, 1024);
    workload::YcsbSpec spec;
    spec.workload = wl;
    spec.record_count = kRecords;
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, 24));
  }
  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(300));  // warmup
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) {
    obs->metrics.ResetRun(cfg.testbed.run_label);
  }
  const Tick measure = Milliseconds(700);
  cluster.sim().RunUntil(cluster.sim().now() + measure);

  uint64_t ops = 0;
  LatencyHistogram reads;
  for (auto& c : clients) {
    ops += c->stats().ops;
    reads.Merge(c->stats().read_latency);
  }
  return {static_cast<double>(ops) / ToSec(measure) / 1000.0,
          reads.mean() / 1000.0, static_cast<double>(reads.p999()) / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 10 - YCSB over 24 KV instances, 12 fragmented SSDs",
      "Gimbal (SIGCOMM'21) Figure 10",
      "Gimbal highest throughput on every workload (~1.3-2.1x), lowest "
      "avg and p99.9 read latency; A/F gain most, C least");

  const workload::YcsbWorkload workloads[] = {
      workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
      workload::YcsbWorkload::kC, workload::YcsbWorkload::kD,
      workload::YcsbWorkload::kF};

  Table thpt("(a) Throughput (KIOPS)");
  thpt.Columns({"workload", "reflex", "parda", "flashfq", "gimbal"});
  Table avg("(b) Average read latency (us)");
  avg.Columns({"workload", "reflex", "parda", "flashfq", "gimbal"});
  Table tail("(c) p99.9 read latency (us)");
  tail.Columns({"workload", "reflex", "parda", "flashfq", "gimbal"});

  const Scheme order[] = {Scheme::kReflex, Scheme::kParda, Scheme::kFlashFq,
                          Scheme::kGimbal};
  for (auto wl : workloads) {
    std::vector<std::string> r1{ToString(wl)}, r2{ToString(wl)},
        r3{ToString(wl)};
    for (Scheme s : order) {
      RunResult r = RunOne(s, wl);
      r1.push_back(Table::Num(r.kiops));
      r2.push_back(Table::Num(r.avg_read_us));
      r3.push_back(Table::Num(r.p999_read_us));
    }
    thpt.Row(r1);
    avg.Row(r2);
    tail.Row(r3);
  }
  thpt.Print();
  avg.Print();
  tail.Print();
  return 0;
}
