// Figures 22 & 23 (Appendix D): latency interference from background
// traffic of growing IO size.
//   Fig 22: 4 KiB random read avg/p99.9 vs a random/sequential write
//           stream of size 0..256 KiB.
//   Fig 23: 4 KiB sequential write avg/p99.9 vs a random/sequential read
//           stream of size 0..256 KiB.
//
// Paper shape: bigger background IOs mean worse head-of-line blocking
// (128KB bg write raises 4K read avg ~1.7x and p99.9 ~2.6x vs 4KB bg);
// the write-bg curves flatten once the writer saturates.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Result {
  double avg_us;
  double p999_us;
};

Result VictimLatency(bool victim_write, uint32_t bg_kb, bool bg_sequential,
                     bool bg_write) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  Testbed bed(cfg);
  FioSpec victim;
  victim.io_bytes = 4096;
  victim.read_ratio = victim_write ? 0.0 : 1.0;
  victim.sequential = victim_write;
  victim.queue_depth = 8;
  victim.seed = 1 + g_seed;
  FioWorker& w = bed.AddWorker(victim);
  if (bg_kb > 0) {
    FioSpec bg;
    bg.io_bytes = bg_kb * 1024;
    bg.read_ratio = bg_write ? 0.0 : 1.0;
    bg.sequential = bg_sequential;
    bg.queue_depth = 16;
    bg.seed = 2 + g_seed;
    bed.AddWorker(bg);
  }
  bed.Run(Milliseconds(200), Milliseconds(600));
  auto& h = victim_write ? w.stats().write_latency : w.stats().read_latency;
  return {h.mean() / 1000.0, static_cast<double>(h.p999()) / 1000.0};
}

void RunFigure(const char* title, bool victim_write) {
  std::printf("\n### %s\n", title);
  Table t("Victim latency (us) vs background IO size");
  t.Columns({"bg_size", "avg_rnd_bg", "p999_rnd_bg", "avg_seq_bg",
             "p999_seq_bg"});
  for (uint32_t kb : {0u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    // Fig 22's background is writes; Fig 23's is reads.
    bool bg_write = !victim_write;
    Result rnd = VictimLatency(victim_write, kb, false, bg_write);
    Result seq = VictimLatency(victim_write, kb, true, bg_write);
    t.Row({kb == 0 ? "none" : (std::to_string(kb) + "KB"),
           Table::Num(rnd.avg_us), Table::Num(rnd.p999_us),
           Table::Num(seq.avg_us), Table::Num(seq.p999_us)});
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 22/23 - Victim latency vs background traffic size",
      "Gimbal (SIGCOMM'21) Figures 22-23 / Appendix D",
      "larger background IOs raise victim avg and tail latency; curves "
      "flatten once the background stream saturates its bandwidth");
  RunFigure("Fig 22: victim = 4KB random read, background = writes", false);
  RunFigure("Fig 23: victim = 4KB sequential write, background = reads",
            true);
  return 0;
}
