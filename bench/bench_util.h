// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <cinttypes>

#include "common/histogram.h"
#include "common/time.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "workload/fio.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace gimbal::bench {

using workload::FioSpec;
using workload::FioWorker;
using workload::Scheme;
using workload::SsdCondition;
using workload::Table;
using workload::Testbed;
using workload::TestbedConfig;

// Observability sinks shared by every testbed the binary builds, or nullptr
// when the user asked for no machine-readable output (the default — the
// tracer's and registry's hot paths then cost one branch each).
inline obs::Observability* g_obs = nullptr;

inline obs::Observability* CurrentObs() { return g_obs; }

// --quick: shrink the run matrix/windows so the binary finishes in seconds
// (the golden-figure regression configs — docs/TESTING.md). Each bench
// decides what "quick" means for its own matrix; trends must survive, exact
// paper numbers need the full run.
inline bool g_quick = false;
inline bool Quick() { return g_quick; }

// --seed=N: shift every workload RNG seed so the same figure can be
// replayed under fresh randomness (golden runs pin the default).
inline uint64_t g_seed = 0;

// --queue=wheel|heap: event-queue engine for every testbed the binary
// builds. The heap is the ordering oracle; golden digests must match the
// wheel's bit-for-bit (docs/SIMULATOR.md).
inline sim::EventQueue::Impl g_queue = sim::EventQueue::Impl::kTimingWheel;

// --threads=N: worker threads for the sharded engine behind every testbed
// (docs/SIMULATOR.md). Multi-SSD testbeds run one shard per used target
// core; N > 1 executes shards in parallel within conservative-lookahead
// epochs. Results — stdout tables, metrics, trace digests — are
// bit-identical at any N; the golden suite pins that down by replaying
// quick configs at several thread counts.
inline int g_threads = 1;

// Per-binary observability session. Construct first thing in main():
//
//   int main(int argc, char** argv) {
//     gimbal::bench::ObsSession obs(argc, argv);
//     ...
//
// Flags (see docs/OBSERVABILITY.md):
//   --metrics-out=PATH   write the final metrics snapshot (.csv => CSV,
//                        anything else => JSON)
//   --trace-out=PATH     enable the event tracer and write the trace
//                        (.jsonl => compact JSONL, anything else =>
//                        chrome://tracing JSON)
//   --trace-limit=N      cap the trace at N events (default 1M); events
//                        past the cap are counted, not stored
//
// Regression-harness flags (docs/TESTING.md):
//   --quick              shrink the bench to its golden-figure quick config
//   --seed=N             shift workload RNG seeds by N (default 0)
//   --queue=wheel|heap   event-queue engine (default wheel)
//   --threads=N          sharded-engine worker threads (default 1);
//                        never changes any result, only wall-clock
//   --digest-out=PATH    enable the tracer and write its FNV digest as
//                        16 hex chars; bit-identical across runs and
//                        wheel/heap for the same config
//
// Files are written when the session goes out of scope at the end of main.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (TakeValue(a, "--metrics-out=", &metrics_path_)) continue;
      if (TakeValue(a, "--trace-out=", &trace_path_)) continue;
      if (TakeValue(a, "--digest-out=", &digest_path_)) continue;
      if (a == "--quick") {
        g_quick = true;
        continue;
      }
      std::string seed;
      if (TakeValue(a, "--seed=", &seed)) {
        char* end = nullptr;
        g_seed = std::strtoull(seed.c_str(), &end, 10);
        if (end == seed.c_str() || *end != '\0') {
          std::fprintf(stderr, "warning: bad --seed '%s', keeping 0\n",
                       seed.c_str());
          g_seed = 0;
        }
        continue;
      }
      std::string queue;
      if (TakeValue(a, "--queue=", &queue)) {
        if (queue == "wheel") {
          g_queue = sim::EventQueue::Impl::kTimingWheel;
        } else if (queue == "heap") {
          g_queue = sim::EventQueue::Impl::kReferenceHeap;
        } else {
          std::fprintf(stderr, "warning: bad --queue '%s', keeping wheel\n",
                       queue.c_str());
        }
        continue;
      }
      std::string threads;
      if (TakeValue(a, "--threads=", &threads)) {
        char* end = nullptr;
        const long n = std::strtol(threads.c_str(), &end, 10);
        if (end == threads.c_str() || *end != '\0' || n < 1) {
          std::fprintf(stderr, "warning: bad --threads '%s', keeping 1\n",
                       threads.c_str());
        } else {
          g_threads = static_cast<int>(n);
        }
        continue;
      }
      std::string limit;
      if (TakeValue(a, "--trace-limit=", &limit)) {
        char* end = nullptr;
        const uint64_t n = std::strtoull(limit.c_str(), &end, 10);
        if (end == limit.c_str() || *end != '\0' || n == 0) {
          std::fprintf(stderr,
                       "warning: bad --trace-limit '%s', keeping %llu\n",
                       limit.c_str(),
                       static_cast<unsigned long long>(trace_limit_));
        } else {
          trace_limit_ = n;
        }
        continue;
      }
      std::fprintf(stderr, "warning: ignoring unknown flag '%s'\n", a.c_str());
    }
    if (metrics_path_.empty() && trace_path_.empty() && digest_path_.empty()) {
      return;
    }
    if (!digest_path_.empty() && trace_limit_ < (4u << 20)) {
      // The digest must cover every event a quick run emits; a truncated
      // trace would hash differently depending on unrelated flag order.
      trace_limit_ = 4u << 20;
    }
    if (!trace_path_.empty() || !digest_path_.empty()) {
      obs_.tracer.Enable(trace_limit_);
    }
    g_obs = &obs_;
  }

  ~ObsSession() {
    if (g_obs == &obs_) g_obs = nullptr;
    if (!metrics_path_.empty()) {
      WriteOut(metrics_path_, obs_.metrics.WriteFile(metrics_path_));
    }
    if (!trace_path_.empty()) {
      WriteOut(trace_path_, obs_.tracer.WriteFile(trace_path_));
    }
    if (!digest_path_.empty()) {
      if (obs_.tracer.dropped() > 0) {
        std::fprintf(stderr,
                     "error: trace overflowed (%zu dropped); digest of a "
                     "truncated trace is meaningless — raise --trace-limit\n",
                     obs_.tracer.dropped());
      }
      std::FILE* f = std::fopen(digest_path_.c_str(), "w");
      if (!f) {
        WriteOut(digest_path_, false);
      } else {
        std::fprintf(f, "%016" PRIx64 "\n", obs_.tracer.Digest());
        std::fclose(f);
      }
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  obs::Observability* obs() { return g_obs; }

 private:
  static bool TakeValue(const std::string& arg, const char* prefix,
                        std::string* out) {
    const size_t n = std::string::traits_type::length(prefix);
    if (arg.compare(0, n, prefix) != 0) return false;
    *out = arg.substr(n);
    return true;
  }

  static void WriteOut(const std::string& path, bool ok) {
    if (!ok) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    }
  }

  obs::Observability obs_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string digest_path_;
  uint64_t trace_limit_ = obs::EventTracer::kDefaultLimit;
};

// Bandwidth in MB/s a worker achieved over the measurement window.
inline double WorkerMBps(FioWorker& w, Tick window) {
  return BytesToMiB(w.stats().total_bytes()) / ToSec(window);
}

inline double AggregateMBps(Testbed& bed) {
  uint64_t bytes = 0;
  for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
  return BytesToMiB(bytes) / ToSec(bed.measured());
}

// Merge latency histograms of a worker subset by IO type.
inline LatencyHistogram MergedLatency(Testbed& bed, IoType type,
                                      size_t first = 0,
                                      size_t count = SIZE_MAX) {
  LatencyHistogram all;
  auto& ws = bed.workers();
  for (size_t i = first; i < ws.size() && i - first < count; ++i) {
    all.Merge(type == IoType::kRead ? ws[i]->stats().read_latency
                                    : ws[i]->stats().write_latency);
  }
  return all;
}

// Default testbed for the microbenchmarks (§5.1-like): one SSD behind a
// SmartNIC target. Logical capacity is scaled so preconditioning stays
// cheap; all bandwidth targets are capacity-independent.
inline TestbedConfig MicroConfig(Scheme scheme, SsdCondition cond) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.condition = cond;
  cfg.ssd.logical_bytes = 512ull << 20;
  cfg.obs = CurrentObs();
  cfg.queue_impl = g_queue;
  cfg.threads = g_threads;
  return cfg;
}

// The paper's fio defaults (§5.1): QD 4 for 128 KiB, QD 32 for 4 KiB;
// reads random; 128 KiB writes sequential, 4 KiB writes random.
inline FioSpec PaperSpec(uint32_t io_bytes, bool is_write, uint64_t seed) {
  FioSpec s;
  s.io_bytes = io_bytes;
  s.read_ratio = is_write ? 0.0 : 1.0;
  s.queue_depth = io_bytes >= 128 * 1024 ? 4 : 32;
  s.sequential = is_write && io_bytes >= 128 * 1024;
  s.seed = seed + g_seed;
  return s;
}

}  // namespace gimbal::bench
