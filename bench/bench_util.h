// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "obs/obs.h"
#include "workload/fio.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace gimbal::bench {

using workload::FioSpec;
using workload::FioWorker;
using workload::Scheme;
using workload::SsdCondition;
using workload::Table;
using workload::Testbed;
using workload::TestbedConfig;

// Observability sinks shared by every testbed the binary builds, or nullptr
// when the user asked for no machine-readable output (the default — the
// tracer's and registry's hot paths then cost one branch each).
inline obs::Observability* g_obs = nullptr;

inline obs::Observability* CurrentObs() { return g_obs; }

// Per-binary observability session. Construct first thing in main():
//
//   int main(int argc, char** argv) {
//     gimbal::bench::ObsSession obs(argc, argv);
//     ...
//
// Flags (see docs/OBSERVABILITY.md):
//   --metrics-out=PATH   write the final metrics snapshot (.csv => CSV,
//                        anything else => JSON)
//   --trace-out=PATH     enable the event tracer and write the trace
//                        (.jsonl => compact JSONL, anything else =>
//                        chrome://tracing JSON)
//   --trace-limit=N      cap the trace at N events (default 1M); events
//                        past the cap are counted, not stored
//
// Files are written when the session goes out of scope at the end of main.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (TakeValue(a, "--metrics-out=", &metrics_path_)) continue;
      if (TakeValue(a, "--trace-out=", &trace_path_)) continue;
      std::string limit;
      if (TakeValue(a, "--trace-limit=", &limit)) {
        char* end = nullptr;
        const uint64_t n = std::strtoull(limit.c_str(), &end, 10);
        if (end == limit.c_str() || *end != '\0' || n == 0) {
          std::fprintf(stderr,
                       "warning: bad --trace-limit '%s', keeping %llu\n",
                       limit.c_str(),
                       static_cast<unsigned long long>(trace_limit_));
        } else {
          trace_limit_ = n;
        }
        continue;
      }
      std::fprintf(stderr, "warning: ignoring unknown flag '%s'\n", a.c_str());
    }
    if (metrics_path_.empty() && trace_path_.empty()) return;
    if (!trace_path_.empty()) obs_.tracer.Enable(trace_limit_);
    g_obs = &obs_;
  }

  ~ObsSession() {
    if (g_obs == &obs_) g_obs = nullptr;
    if (!metrics_path_.empty()) {
      WriteOut(metrics_path_, obs_.metrics.WriteFile(metrics_path_));
    }
    if (!trace_path_.empty()) {
      WriteOut(trace_path_, obs_.tracer.WriteFile(trace_path_));
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  obs::Observability* obs() { return g_obs; }

 private:
  static bool TakeValue(const std::string& arg, const char* prefix,
                        std::string* out) {
    const size_t n = std::string::traits_type::length(prefix);
    if (arg.compare(0, n, prefix) != 0) return false;
    *out = arg.substr(n);
    return true;
  }

  static void WriteOut(const std::string& path, bool ok) {
    if (!ok) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    }
  }

  obs::Observability obs_;
  std::string metrics_path_;
  std::string trace_path_;
  uint64_t trace_limit_ = obs::EventTracer::kDefaultLimit;
};

// Bandwidth in MB/s a worker achieved over the measurement window.
inline double WorkerMBps(FioWorker& w, Tick window) {
  return BytesToMiB(w.stats().total_bytes()) / ToSec(window);
}

inline double AggregateMBps(Testbed& bed) {
  uint64_t bytes = 0;
  for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
  return BytesToMiB(bytes) / ToSec(bed.measured());
}

// Merge latency histograms of a worker subset by IO type.
inline LatencyHistogram MergedLatency(Testbed& bed, IoType type,
                                      size_t first = 0,
                                      size_t count = SIZE_MAX) {
  LatencyHistogram all;
  auto& ws = bed.workers();
  for (size_t i = first; i < ws.size() && i - first < count; ++i) {
    all.Merge(type == IoType::kRead ? ws[i]->stats().read_latency
                                    : ws[i]->stats().write_latency);
  }
  return all;
}

// Default testbed for the microbenchmarks (§5.1-like): one SSD behind a
// SmartNIC target. Logical capacity is scaled so preconditioning stays
// cheap; all bandwidth targets are capacity-independent.
inline TestbedConfig MicroConfig(Scheme scheme, SsdCondition cond) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.condition = cond;
  cfg.ssd.logical_bytes = 512ull << 20;
  cfg.obs = CurrentObs();
  return cfg;
}

// The paper's fio defaults (§5.1): QD 4 for 128 KiB, QD 32 for 4 KiB;
// reads random; 128 KiB writes sequential, 4 KiB writes random.
inline FioSpec PaperSpec(uint32_t io_bytes, bool is_write, uint64_t seed) {
  FioSpec s;
  s.io_bytes = io_bytes;
  s.read_ratio = is_write ? 0.0 : 1.0;
  s.queue_depth = io_bytes >= 128 * 1024 ? 4 : 32;
  s.sequential = is_write && io_bytes >= 128 * 1024;
  s.seed = seed;
  return s;
}

}  // namespace gimbal::bench
