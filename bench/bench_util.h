// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "workload/fio.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace gimbal::bench {

using workload::FioSpec;
using workload::FioWorker;
using workload::Scheme;
using workload::SsdCondition;
using workload::Table;
using workload::Testbed;
using workload::TestbedConfig;

// Bandwidth in MB/s a worker achieved over the measurement window.
inline double WorkerMBps(FioWorker& w, Tick window) {
  return BytesToMiB(w.stats().total_bytes()) / ToSec(window);
}

inline double AggregateMBps(Testbed& bed) {
  uint64_t bytes = 0;
  for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
  return BytesToMiB(bytes) / ToSec(bed.measured());
}

// Merge latency histograms of a worker subset by IO type.
inline LatencyHistogram MergedLatency(Testbed& bed, IoType type,
                                      size_t first = 0,
                                      size_t count = SIZE_MAX) {
  LatencyHistogram all;
  auto& ws = bed.workers();
  for (size_t i = first; i < ws.size() && i - first < count; ++i) {
    all.Merge(type == IoType::kRead ? ws[i]->stats().read_latency
                                    : ws[i]->stats().write_latency);
  }
  return all;
}

// Default testbed for the microbenchmarks (§5.1-like): one SSD behind a
// SmartNIC target. Logical capacity is scaled so preconditioning stays
// cheap; all bandwidth targets are capacity-independent.
inline TestbedConfig MicroConfig(Scheme scheme, SsdCondition cond) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.condition = cond;
  cfg.ssd.logical_bytes = 512ull << 20;
  return cfg;
}

// The paper's fio defaults (§5.1): QD 4 for 128 KiB, QD 32 for 4 KiB;
// reads random; 128 KiB writes sequential, 4 KiB writes random.
inline FioSpec PaperSpec(uint32_t io_bytes, bool is_write, uint64_t seed) {
  FioSpec s;
  s.io_bytes = io_bytes;
  s.read_ratio = is_write ? 0.0 : 1.0;
  s.queue_depth = io_bytes >= 128 * 1024 ? 4 : 32;
  s.sequential = is_write && io_bytes >= 128 * 1024;
  s.seed = seed;
  return s;
}

}  // namespace gimbal::bench
