// Figure 16 (§2.4): achievable bandwidth as per-IO processing cost is
// added on the SmartNIC target's cores (all 8 cores, 4 SSDs).
//
// Paper shape: 4KB reads tolerate ~1us extra before losing bandwidth,
// 4KB writes ~5us, 128KB reads ~5us, 128KB writes ~10us; beyond that
// bandwidth falls off roughly as 1/cost.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double GBps(uint32_t io_bytes, bool is_write, Tick added) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  cfg.num_ssds = 4;
  cfg.ssd.logical_bytes = 256ull << 20;
  cfg.target.cores = 8;
  cfg.target.added_cost = added;
  Testbed bed(cfg);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 2; ++i) {
      FioSpec spec = PaperSpec(io_bytes, is_write,
                               static_cast<uint64_t>(s * 2 + i) + 1);
      spec.queue_depth = io_bytes >= 131072 ? 16 : 96;
      bed.AddWorker(spec, s);
    }
  }
  bed.Run(Milliseconds(150), Milliseconds(400));
  return AggregateMBps(bed) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 16 - Bandwidth vs added per-IO processing cost (4 SSDs, 8 cores)",
      "Gimbal (SIGCOMM'21) Figure 16 / §2.4",
      "small IOs tolerate ~1-5us of extra per-IO work, large IOs ~5-10us, "
      "then bandwidth decays with cost");

  Table t("Aggregated bandwidth (GB/s)");
  t.Columns({"added_us", "4KB_read", "128KB_read", "4KB_write",
             "128KB_write"});
  for (int us : {0, 1, 5, 10, 20, 40, 80, 160, 320}) {
    Tick added = Microseconds(us);
    t.Row({std::to_string(us), Table::Num(GBps(4096, false, added), 2),
           Table::Num(GBps(131072, false, added), 2),
           Table::Num(GBps(4096, true, added), 2),
           Table::Num(GBps(131072, true, added), 2)});
  }
  t.Print();
  return 0;
}
