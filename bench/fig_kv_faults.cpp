// fig_kv_faults: end-to-end KV fault tolerance (docs/FAULTS.md).
//
// Fig 10's setup shrunk to 4 RocksDB-like instances over 3 replicated
// SSDs, YCSB-A, run twice: a fault-free control and a faulted run where
// SSD 0 throws a media-error burst, SSD 1 fails outright and recovers,
// and instance 0's process crashes and replays its WAL mid-run. The
// windowed throughput timeline shows the degraded plateau and the
// recovery; the self-checks certify the durability contract:
//
//   * kv.lost_writes == 0 — no acked write was ever lost,
//   * every dirty replica was re-replicated (ledger drained + balanced),
//   * the crashed instance recovered and replayed its WAL,
//   * the invariant checker (collect-everything mode) stayed silent,
//   * the control run saw no failovers, no degraded writes, no faults.
//
// Fault knobs (defaults in parentheses; see docs/EXPERIMENTS.md):
//   --fault-media-p=P   media-error probability per IO in the burst (0.2)
//   --fault-seed=N      fault RNG seed (1)
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "check/invariants.h"
#include "kv/cluster.h"
#include "obs/schema.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::YcsbClient;

namespace {

struct FaultKnobs {
  double media_p = 0.2;
  uint64_t seed = 1;
};

bool TakeDouble(const char* arg, const char* prefix, double* out) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = std::atof(arg + n);
  return true;
}

// Strip --fault-* flags (consumed here) so ObsSession sees only its own.
FaultKnobs ParseFaultFlags(int* argc, char** argv) {
  FaultKnobs k;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    double v = 0;
    if (TakeDouble(argv[i], "--fault-media-p=", &v)) {
      k.media_p = v;
    } else if (TakeDouble(argv[i], "--fault-seed=", &v)) {
      k.seed = static_cast<uint64_t>(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return k;
}

constexpr int kInstances = 4;
constexpr int kSsds = 3;
constexpr int kWindows = 16;  // throughput timeline resolution

// Quick (golden) config halves every window and the keyspace; the fault
// phases and all self-checks are unchanged.
inline Tick Scaled(Tick t) { return Quick() ? t / 2 : t; }
inline Tick Warmup() { return Scaled(Milliseconds(60)); }
inline Tick Measure() { return Scaled(Milliseconds(400)); }
inline uint64_t Records() { return Quick() ? 8'000 : 20'000; }

struct RunResult {
  double kiops = 0;
  double avg_read_us = 0;
  double inst_kiops[kInstances] = {};
  double window_kiops[kWindows] = {};
  uint64_t failed_ops = 0;
  uint64_t aborted_ops = 0;
  // Fault-handling totals across instances.
  uint64_t failover_reads = 0;
  uint64_t degraded_writes = 0;
  uint64_t dirty_recorded = 0;
  uint64_t dirty_repaired = 0;
  uint64_t dirty_dropped = 0;
  uint64_t rebuild_bytes = 0;
  uint64_t wal_retries = 0;
  uint64_t lost_writes = 0;   // must stay 0
  size_t dirty_pending = 0;   // ledger entries left after the drain
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t replayed_records = 0;
  double rebuild_done_ms = 0;  // ledger-drained time, ms after measure start
  int recover_acks = 0;
  fault::FaultInjector::FaultCounters faults;
  bool checker_ok = false;
  size_t checker_violations = 0;
};

RunResult RunScenario(bool faulted, const FaultKnobs& k) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.target.cores = kSsds;
  cfg.testbed.condition = SsdCondition::kClean;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.queue_impl = g_queue;
  cfg.testbed.threads = g_threads;
  cfg.testbed.check = &chk;
  cfg.testbed.fault_seed = k.seed;
  cfg.testbed.run_label = faulted ? "faulted" : "control";
  cfg.hba.backend_bytes = 256ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  const Tick t0 = Warmup();  // fault phases are relative to measure start
  if (faulted) {
    cfg.testbed.faults.media_errors.push_back(
        {0, t0 + Scaled(Milliseconds(25)), t0 + Scaled(Milliseconds(100)),
         k.media_p, Microseconds(200)});
    cfg.testbed.faults.failures.push_back(
        {1, t0 + Scaled(Milliseconds(125)), t0 + Scaled(Milliseconds(200))});
  }
  KvCluster cluster(cfg);

  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < kInstances; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    inst.db->BulkLoad(Records(), 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kA;
    spec.record_count = Records();
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, /*concurrency=*/8));
  }

  RunResult r;
  if (faulted) {
    // Instance 0's process dies after the SSD faults have healed and
    // replays its replicated WAL; its client rides through the kAborted
    // completions and keeps issuing.
    kv::KvDb* db0 = insts[0]->db.get();
    int* acks = &r.recover_acks;
    cluster.sim().After(t0 + Scaled(Milliseconds(250)), [db0, acks] {
      db0->SimulateCrash();
      db0->Recover([acks](IoStatus st) {
        if (st == IoStatus::kOk) ++*acks;
      });
    });
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Warmup());
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) obs->metrics.ResetRun(cfg.testbed.run_label);

  // Measurement: step window by window so the timeline captures the
  // degraded plateau and the post-recovery ramp. `rebuild_done_ms` records
  // the sampling point where the dirty ledger last transitioned to empty
  // (i.e. re-replication completed after the final outage).
  uint64_t last_ops = 0;
  bool was_dirty = false;
  auto sample_ledger = [&] {
    size_t pending = 0;
    for (auto* inst : insts) pending += inst->blobs->dirty_count();
    if (pending > 0) {
      was_dirty = true;
    } else if (was_dirty) {
      was_dirty = false;
      r.rebuild_done_ms = ToSec(cluster.sim().now() - Warmup()) * 1000.0;
    }
  };
  const Tick win = Measure() / kWindows;
  for (int w = 0; w < kWindows; ++w) {
    cluster.sim().RunUntil(cluster.sim().now() + win);
    uint64_t ops = 0;
    for (auto& c : clients) ops += c->stats().ops;
    r.window_kiops[w] =
        static_cast<double>(ops - last_ops) / ToSec(win) / 1000.0;
    last_ops = ops;
    sample_ledger();
  }

  // Drain: stop the clients, let WAL retries and the rebuild scanners
  // converge, then quiesce the fabric completely. Stepping in small
  // increments pins down when the last dirty replica was re-replicated.
  for (auto& c : clients) c->Stop();
  const Tick drain_end = cluster.sim().now() + Scaled(Milliseconds(300));
  while (cluster.sim().now() < drain_end) {
    cluster.sim().RunUntil(cluster.sim().now() + Scaled(Milliseconds(5)));
    sample_ledger();
  }
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  uint64_t ops = 0;
  LatencyHistogram reads;
  for (int i = 0; i < kInstances; ++i) {
    const auto& cs = clients[static_cast<size_t>(i)]->stats();
    ops += cs.ops;
    reads.Merge(cs.read_latency);
    r.inst_kiops[i] =
        static_cast<double>(cs.ops) / ToSec(Measure()) / 1000.0;
    r.failed_ops += cs.failed;
    r.aborted_ops += cs.aborted;
    const auto& bs = insts[static_cast<size_t>(i)]->blobs->stats();
    r.failover_reads += bs.failover_reads;
    r.degraded_writes += bs.degraded_writes;
    r.dirty_recorded += bs.dirty_recorded;
    r.dirty_repaired += bs.dirty_repaired;
    r.dirty_dropped += bs.dirty_dropped;
    r.rebuild_bytes += bs.rebuild_bytes;
    r.dirty_pending += insts[static_cast<size_t>(i)]->blobs->dirty_count();
    const auto& ds = insts[static_cast<size_t>(i)]->db->stats();
    r.wal_retries += ds.wal_retries;
    r.crashes += ds.crashes;
    r.recoveries += ds.recoveries;
    r.replayed_records += ds.replayed_records;
    if (auto* obs = CurrentObs()) {
      const obs::Labels l = obs::Labels::TenantSsd(i, -1);
      r.lost_writes +=
          obs->metrics.GetCounter(obs::schema::kKvLostWrites, l).value();
    }
  }
  r.kiops = static_cast<double>(ops) / ToSec(Measure()) / 1000.0;
  r.avg_read_us = reads.mean() / 1000.0;
  r.faults = cluster.bed().faults().counters();
  chk.CheckDrained();
  r.checker_ok = chk.ok();
  r.checker_violations = chk.violations().size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  FaultKnobs knobs = ParseFaultFlags(&argc, argv);
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "fig_kv_faults - KV durability under faults (4 instances, 3 SSDs)",
      "fault-tolerance extension (docs/FAULTS.md); not a paper figure",
      "degraded throughput during the outage, full recovery after; zero "
      "lost acked writes, dirty ledger drained, WAL replayed");

  const RunResult control = RunScenario(/*faulted=*/false, knobs);
  const RunResult faulted = RunScenario(/*faulted=*/true, knobs);

  Table summary("YCSB-A aggregate (control vs faulted)");
  summary.Columns({"run", "kiops", "avg_read_us", "failed_ops",
                   "aborted_ops", "wal_retries"});
  summary.Row({"control", Table::Num(control.kiops),
               Table::Num(control.avg_read_us),
               Table::Num(double(control.failed_ops), 0),
               Table::Num(double(control.aborted_ops), 0),
               Table::Num(double(control.wal_retries), 0)});
  summary.Row({"faulted", Table::Num(faulted.kiops),
               Table::Num(faulted.avg_read_us),
               Table::Num(double(faulted.failed_ops), 0),
               Table::Num(double(faulted.aborted_ops), 0),
               Table::Num(double(faulted.wal_retries), 0)});
  summary.Print();

  Table inst("Per-instance throughput (KIOPS; instance 0 crashes+recovers)");
  inst.Columns({"instance", "control", "faulted"});
  for (int i = 0; i < kInstances; ++i) {
    inst.Row({std::to_string(i), Table::Num(control.inst_kiops[i]),
              Table::Num(faulted.inst_kiops[i])});
  }
  inst.Print();

  Table tl("Throughput timeline (KIOPS per window; media burst, SSD kill, "
           "crash)");
  tl.Columns({"window", "t_ms", "control", "faulted"});
  const double win_ms = ToSec(Measure() / kWindows) * 1000.0;
  for (int w = 0; w < kWindows; ++w) {
    tl.Row({std::to_string(w), Table::Num(win_ms * (w + 1), 1),
            Table::Num(control.window_kiops[w]),
            Table::Num(faulted.window_kiops[w])});
  }
  tl.Print();

  Table ft("Fault handling (faulted run)");
  ft.Columns({"metric", "value"});
  ft.Row({"failover_reads", Table::Num(double(faulted.failover_reads), 0)});
  ft.Row({"degraded_writes", Table::Num(double(faulted.degraded_writes), 0)});
  ft.Row({"dirty_recorded", Table::Num(double(faulted.dirty_recorded), 0)});
  ft.Row({"dirty_repaired", Table::Num(double(faulted.dirty_repaired), 0)});
  ft.Row({"dirty_dropped", Table::Num(double(faulted.dirty_dropped), 0)});
  ft.Row({"rebuild_mib", Table::Num(BytesToMiB(faulted.rebuild_bytes))});
  ft.Row({"wal_replayed_records",
          Table::Num(double(faulted.replayed_records), 0)});
  ft.Row({"rebuild_done_ms", Table::Num(faulted.rebuild_done_ms, 1)});
  ft.Row({"injected_media_errors",
          Table::Num(double(faulted.faults.media_errors), 0)});
  ft.Row({"injected_device_failed",
          Table::Num(double(faulted.faults.device_failed_ios), 0)});
  ft.Print();

  // --- Self-checks (the durability contract) ------------------------------
  struct Check {
    const char* name;
    bool pass;
  } checks[] = {
      {"no acked write lost (kv.lost_writes == 0, both runs)",
       control.lost_writes == 0 && faulted.lost_writes == 0},
      {"dirty ledger drained (0 pending) and balanced",
       faulted.dirty_pending == 0 &&
           faulted.dirty_repaired + faulted.dirty_dropped ==
               faulted.dirty_recorded},
      {"outage exercised degraded writes and re-replication",
       faulted.degraded_writes > 0 && faulted.dirty_recorded > 0 &&
           faulted.rebuild_bytes > 0},
      {"media burst exercised read failover", faulted.failover_reads > 0},
      {"instance 0 crashed, recovered and replayed its WAL",
       faulted.crashes == 1 && faulted.recoveries == 1 &&
           faulted.recover_acks == 1 && faulted.replayed_records > 0},
      {"invariant checker silent (faulted run)",
       faulted.checker_ok && faulted.checker_violations == 0},
      {"invariant checker silent (control run)",
       control.checker_ok && control.checker_violations == 0},
      {"control run saw no fault handling",
       control.failover_reads == 0 && control.degraded_writes == 0 &&
           control.dirty_recorded == 0 && control.failed_ops == 0 &&
           control.aborted_ops == 0},
  };
  bool all = true;
  std::printf("\n");
  for (const Check& c : checks) {
    all = all && c.pass;
    std::printf("%-60s %s\n", c.name, c.pass ? "PASS" : "FAIL");
  }
  return all ? 0 : 1;
}
