// Figure 17 (Appendix B): latency impulse response as offered load grows
// past the device's throughput capacity, with and without Gimbal's
// congestion control.
//
// Paper shape: without control, average latency explodes once the
// 4KB+128KB read mix exceeds capacity; with Gimbal the delay stays in a
// stable band while bandwidth stays near the device maximum.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

void Timeline(Scheme scheme) {
  std::printf("\n### scheme = %s\n", ToString(scheme));
  TestbedConfig cfg = MicroConfig(scheme, SsdCondition::kClean);
  Testbed bed(cfg);
  // 4 workers of each shape exist; they start in waves to raise load.
  const int kWaves = 4;
  for (int i = 0; i < kWaves; ++i) {
    FioSpec small = PaperSpec(4096, false, static_cast<uint64_t>(i) + 1);
    small.queue_depth = 32;
    bed.AddWorker(small);
    FioSpec big = PaperSpec(131072, false, static_cast<uint64_t>(i) + 101);
    big.queue_depth = 4;
    bed.AddWorker(big);
  }
  auto& sim = bed.sim();
  // Quick (golden) config: compress the wave timeline 4x — the latency
  // divergence between vanilla and Gimbal still shows.
  const double ph = Quick() ? 0.25 : 1.0;
  for (int wave = 0; wave < kWaves; ++wave) {
    sim.At(Seconds(ph * wave) + 1, [&bed, wave]() {
      bed.workers()[static_cast<size_t>(2 * wave)]->Start();
      bed.workers()[static_cast<size_t>(2 * wave + 1)]->Start();
    });
  }

  Table t("Timeline (500 ms samples)");
  t.Columns({"t_sec", "active_workers", "agg_MBps", "lat4k_us",
             "lat128k_us"});
  std::vector<uint64_t> last_bytes(bed.workers().size(), 0);
  std::vector<LatencyHistogram> last_hist;  // unused; windows via deltas
  Tick step = Quick() ? Milliseconds(125) : Milliseconds(500);
  uint64_t last4k_ios = 0, last4k_sum = 0;
  (void)last4k_ios;
  (void)last4k_sum;
  LatencyHistogram prev4k, prev128k;
  for (Tick now = 0; now < static_cast<Tick>(ph * Seconds(4.5)); now += step) {
    sim.RunUntil(now + step);
    uint64_t delta = 0;
    int active = 0;
    for (size_t i = 0; i < bed.workers().size(); ++i) {
      uint64_t b = bed.workers()[i]->stats().total_bytes();
      delta += b - last_bytes[i];
      last_bytes[i] = b;
      if (bed.workers()[i]->running()) ++active;
    }
    // Windowed mean latency: difference of cumulative histograms.
    double lat4k = 0, lat128k = 0;
    {
      LatencyHistogram small, big;
      for (size_t i = 0; i < bed.workers().size(); ++i) {
        auto& h = bed.workers()[i]->stats().read_latency;
        if (bed.workers()[i]->spec().io_bytes == 4096) {
          small.Merge(h);
        } else {
          big.Merge(h);
        }
      }
      auto windowed_mean = [](const LatencyHistogram& cur,
                              LatencyHistogram& prev) {
        uint64_t n = cur.count() - prev.count();
        double sum = cur.mean() * static_cast<double>(cur.count()) -
                     prev.mean() * static_cast<double>(prev.count());
        prev = cur;
        return n > 0 ? sum / static_cast<double>(n) : 0.0;
      };
      lat4k = windowed_mean(small, prev4k) / 1000.0;
      lat128k = windowed_mean(big, prev128k) / 1000.0;
    }
    t.Row({Table::Num(ToSec(now + step), 1), std::to_string(active),
           Table::Num(BytesToMiB(delta) / ToSec(step)), Table::Num(lat4k),
           Table::Num(lat128k)});
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 17 - Latency under growing 4KB+128KB read load",
      "Gimbal (SIGCOMM'21) Figure 17 / Appendix B",
      "vanilla latency ramps sharply once load exceeds capacity; Gimbal "
      "holds the delay in a stable band at near-max bandwidth");
  Timeline(Scheme::kVanilla);
  Timeline(Scheme::kGimbal);
  return 0;
}
