// Figure 20 (Appendix D): a 4 KiB stream1 (random/sequential x read/write)
// competing with a stream2 whose IO size sweeps upward.
//
// Paper shape: the larger stream2's IOs, the less bandwidth 4 KiB stream1
// keeps (e.g. random read: ~850 MB/s head-to-head at 4K, but only
// ~91 MB/s against a 64K competitor).
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 20 - 4KB stream1 bandwidth vs competitor IO size",
      "Gimbal (SIGCOMM'21) Figure 20 / Appendix D",
      "large competing IOs dominate: stream1's share falls steeply with "
      "stream2's size");

  Table t("Stream1 (4KB) bandwidth (MB/s), vanilla target, clean SSD");
  t.Columns({"s2_size", "rnd_rd", "seq_rd", "rnd_wr", "seq_wr"});
  for (uint32_t kb : {4u, 8u, 16u, 32u, 64u, 128u}) {
    std::vector<std::string> row{std::to_string(kb) + "KB"};
    for (auto [rnd, wr] : {std::pair{true, false}, {false, false},
                           {true, true}, {false, true}}) {
      TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
      Testbed bed(cfg);
      FioSpec s1;
      s1.io_bytes = 4096;
      s1.read_ratio = wr ? 0.0 : 1.0;
      s1.sequential = !rnd;
      s1.queue_depth = 32;
      s1.seed = 1 + g_seed;
      FioSpec s2 = s1;
      s2.io_bytes = kb * 1024;
      s2.queue_depth = 32;
      s2.seed = 2 + g_seed;
      FioWorker& w1 = bed.AddWorker(s1);
      bed.AddWorker(s2);
      bed.Run(Milliseconds(200), Milliseconds(500));
      row.push_back(Table::Num(WorkerMBps(w1, bed.measured())));
    }
    t.Row(row);
  }
  t.Print();
  return 0;
}
