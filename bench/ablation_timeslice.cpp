// Extension bench backing §2.3's critique of timeslice IO schedulers
// (Argon/CFQ): time quanta with exclusive device access give isolation but
// "violate responsiveness under high consolidation and ignore that the IO
// capacity is not constant". Eight 4 KiB readers on one clean SSD.
//
// Expectation: the timeslice scheduler's tail latency scales with
// (#tenants x quantum) — orders of magnitude above Gimbal at equal or
// lower bandwidth.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Row {
  double agg_mbps;
  double p50_us;
  double p99_us;
};

Row Run(Scheme scheme, Tick quantum) {
  TestbedConfig cfg = MicroConfig(scheme, SsdCondition::kClean);
  cfg.timeslice.quantum = quantum;
  Testbed bed(cfg);
  for (int i = 0; i < 8; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    bed.AddWorker(spec);
  }
  bed.Run(Milliseconds(300), Milliseconds(600));
  LatencyHistogram all = MergedLatency(bed, IoType::kRead);
  return {AggregateMBps(bed), static_cast<double>(all.p50()) / 1000.0,
          static_cast<double>(all.p99()) / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Ablation - timeslice scheduling vs Gimbal (8 x 4KB readers)",
      "Gimbal (SIGCOMM'21) §2.3 discussion (extension)",
      "timeslice tails scale with #tenants x quantum; Gimbal matches its "
      "bandwidth at millisecond-lower tails");

  Table t("8 tenants, clean SSD");
  t.Columns({"scheme", "agg_MBps", "p50_us", "p99_us"});
  for (Tick q : {Milliseconds(1), Milliseconds(2), Milliseconds(4),
                 Milliseconds(8)}) {
    Row r = Run(Scheme::kTimeslice, q);
    t.Row({"timeslice q=" + Table::Num(ToMs(q), 0) + "ms",
           Table::Num(r.agg_mbps), Table::Num(r.p50_us),
           Table::Num(r.p99_us)});
  }
  Row g = Run(Scheme::kGimbal, Milliseconds(2));
  t.Row({"gimbal", Table::Num(g.agg_mbps), Table::Num(g.p50_us),
         Table::Num(g.p99_us)});
  Row v = Run(Scheme::kVanilla, Milliseconds(2));
  t.Row({"vanilla", Table::Num(v.agg_mbps), Table::Num(v.p50_us),
         Table::Num(v.p99_us)});
  t.Print();
  return 0;
}
