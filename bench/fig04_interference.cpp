// Figure 4: multi-tenant interference on an unprotected (vanilla) SmartNIC
// JBOF. A victim flow (4KB random read, QD32) shares one SSD with
// neighbours of varying size/intensity/type.
//
// Paper shape: higher-intensity neighbours always win (128KB-QD8 takes
// ~3x the victim); write neighbours crush the victim (~59% loss vs the
// same-shape read neighbour).
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Neighbor {
  const char* label;
  uint32_t io_bytes;
  uint32_t qd;
  bool write;
};

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 4 - Multi-tenant interference (vanilla target, clean SSD)",
      "Gimbal (SIGCOMM'21) Figure 4",
      "neighbour intensity dictates share; write neighbours cost the "
      "victim ~59% vs read neighbours");

  const Neighbor neighbors[] = {
      {"4KB-RD QD32", 4096, 32, false},   {"4KB-RD QD128", 4096, 128, false},
      {"128KB-RD QD1", 131072, 1, false}, {"128KB-RD QD8", 131072, 8, false},
      {"4KB-WR QD32", 4096, 32, true},    {"4KB-WR QD128", 4096, 128, true},
  };

  Table t("Bandwidth (MB/s): victim = 4KB random read QD32");
  t.Columns({"neighbor", "victim_bw", "neighbor_bw", "ratio"});
  for (const Neighbor& n : neighbors) {
    TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
    Testbed bed(cfg);
    FioSpec victim;
    victim.io_bytes = 4096;
    victim.queue_depth = 32;
    victim.seed = 1 + g_seed;
    FioWorker& wv = bed.AddWorker(victim);
    FioSpec nb;
    nb.io_bytes = n.io_bytes;
    nb.queue_depth = n.qd;
    nb.read_ratio = n.write ? 0.0 : 1.0;
    nb.seed = 2 + g_seed;
    FioWorker& wn = bed.AddWorker(nb);
    // Quick (golden) config: shorter windows, same matrix — the dominance
    // ordering survives, exact bandwidths do not.
    if (Quick()) {
      bed.Run(Milliseconds(50), Milliseconds(100));
    } else {
      bed.Run(Milliseconds(200), Milliseconds(500));
    }
    double v = WorkerMBps(wv, bed.measured());
    double w = WorkerMBps(wn, bed.measured());
    t.Row({n.label, Table::Num(v), Table::Num(w), Table::Num(w / v, 2)});
  }
  t.Print();
  return 0;
}
