// §2.2 latency breakdown: "the most time-consuming part for both reads and
// writes is the NVMe command execution phase... For a 4KB/128KB random
// read, it contributes 92.4%/86.1% (server) and 88.8%/92.2% (SmartNIC) of
// the target-side latency."
//
// The fabric records both the device latency (SSD submit->complete) and
// the target latency (ingress->completion sent); their ratio is the NVMe
// command execution share.
#include "bench_util.h"

#include "fabric/initiator.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double DeviceShare(fabric::TargetConfig target, uint32_t io_bytes,
                   bool is_write) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  cfg.target = target;
  Testbed bed(cfg);
  fabric::Initiator& init = bed.AddInitiator(0);
  double device_ns = 0, target_ns = 0;
  uint64_t n = 0;
  // QD1 stream, as in the paper's unloaded breakdown.
  std::function<void(uint64_t)> issue = [&](uint64_t i) {
    if (i >= 400) return;
    init.Submit(is_write ? IoType::kWrite : IoType::kRead,
                (i * 37 % 1024) * static_cast<uint64_t>(io_bytes), io_bytes,
                IoPriority::kNormal,
                [&, i](const IoCompletion& cpl, Tick) {
                  device_ns += static_cast<double>(cpl.device_latency);
                  target_ns += static_cast<double>(cpl.target_latency);
                  ++n;
                  issue(i + 1);
                });
  };
  issue(0);
  bed.sim().Run();
  return n > 0 && target_ns > 0 ? 100.0 * device_ns / target_ns : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "§2.2 - NVMe command execution share of target-side latency",
      "Gimbal (SIGCOMM'21) §2.2 breakdown discussion",
      "the SSD execution phase dominates (~86-92%) on both server and "
      "SmartNIC, which is why their latencies are close");

  Table t("Device-execution share of target latency (%)");
  t.Columns({"io", "server_read", "smartnic_read", "server_write",
             "smartnic_write"});
  for (uint32_t kb : {4u, 128u}) {
    t.Row({std::to_string(kb) + "KB",
           Table::Num(DeviceShare(fabric::TargetConfig::ServerLike(),
                                  kb * 1024, false)),
           Table::Num(DeviceShare(fabric::TargetConfig::SmartNicLike(),
                                  kb * 1024, false)),
           Table::Num(DeviceShare(fabric::TargetConfig::ServerLike(),
                                  kb * 1024, true)),
           Table::Num(DeviceShare(fabric::TargetConfig::SmartNicLike(),
                                  kb * 1024, true))});
  }
  t.Print();
  return 0;
}
