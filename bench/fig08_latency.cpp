// Figure 8: end-to-end average / p99 / p99.9 latency per IO type under the
// Fig 7 read+write mixes (16 workers each).
//
// Paper shape: Gimbal cuts p99 read/write latency ~50-60% vs Parda;
// FlashFQ and ReFlex (no flow control) sit an order of magnitude higher
// at the tail.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

void RunCase(const char* title, SsdCondition cond, uint32_t io_bytes) {
  std::printf("\n### %s\n", title);
  Table t("Latency (us) by scheme");
  t.Columns({"scheme", "rd_avg", "rd_p99", "rd_p999", "wr_avg", "wr_p99",
             "wr_p999"});
  for (Scheme s : workload::kAllSchemes) {
    TestbedConfig cfg = MicroConfig(s, cond);
    Testbed bed(cfg);
    for (int i = 0; i < 16; ++i) {
      FioSpec rd = PaperSpec(io_bytes, false, static_cast<uint64_t>(i) + 1);
      rd.sequential = (cond == SsdCondition::kClean);
      bed.AddWorker(rd);
    }
    for (int i = 0; i < 16; ++i) {
      bed.AddWorker(PaperSpec(io_bytes, true, static_cast<uint64_t>(i) + 101));
    }
    bed.Run(Milliseconds(400), Seconds(1));
    LatencyHistogram rd = MergedLatency(bed, IoType::kRead, 0, 16);
    LatencyHistogram wr = MergedLatency(bed, IoType::kWrite, 16, 16);
    t.Row({ToString(s), Table::Us(rd.mean()),
           Table::Us(static_cast<double>(rd.p99())),
           Table::Us(static_cast<double>(rd.p999())), Table::Us(wr.mean()),
           Table::Us(static_cast<double>(wr.p99())),
           Table::Us(static_cast<double>(wr.p999()))});
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 8 - Read/write latency, 16+16 workers",
      "Gimbal (SIGCOMM'21) Figure 8",
      "Gimbal's p99/p99.9 well below Parda (~50-60% lower) and far below "
      "the flow-control-free FlashFQ/ReFlex");
  RunCase("(a) Clean SSD, 128KB IOs", SsdCondition::kClean, 131072);
  RunCase("(b) Fragmented SSD, 4KB IOs", SsdCondition::kFragmented, 4096);
  return 0;
}
