// Figure 18 (Appendix B): the dynamic latency threshold chasing the EWMA
// latency (128 KiB random read, load stepping up).
//
// Paper shape: the threshold decays toward the EWMA while traffic is
// steady, and as outstanding IO grows the EWMA crosses it more and more
// often (each crossing = a congestion signal; threshold jumps halfway to
// the max).
#include "bench_util.h"

#include "core/gimbal_switch.h"

using namespace gimbal;
using namespace gimbal::bench;

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 18 - Dynamic latency threshold vs EWMA (128KB random read)",
      "Gimbal (SIGCOMM'21) Figure 18 / Appendix B",
      "threshold tracks the EWMA from above; crossings become frequent as "
      "load approaches saturation");

  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, SsdCondition::kClean);
  Testbed bed(cfg);
  const int kWorkers = 8;
  for (int i = 0; i < kWorkers; ++i) {
    FioSpec spec = PaperSpec(131072, false, static_cast<uint64_t>(i) + 1);
    spec.queue_depth = 4;
    bed.AddWorker(spec);
  }
  auto& sim = bed.sim();
  // Staggered starts raise outstanding IO over time.
  for (int i = 0; i < kWorkers; ++i) {
    sim.At(Seconds(0.4 * i) + 1, [&bed, i]() {
      bed.workers()[static_cast<size_t>(i)]->Start();
    });
  }

  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  Table t("Trace (100 ms samples)");
  t.Columns({"t_sec", "workers", "ewma_us", "thresh_us", "state",
             "congestion_signals"});
  Tick step = Milliseconds(100);
  for (Tick now = 0; now < Seconds(4); now += step) {
    sim.RunUntil(now + step);
    int active = 0;
    for (auto& w : bed.workers()) {
      if (w->running()) ++active;
    }
    const auto& mon = sw->rate_controller().monitor(IoType::kRead);
    t.Row({Table::Num(ToSec(now + step), 1), std::to_string(active),
           Table::Num(mon.ewma_latency() / 1000.0),
           Table::Num(mon.threshold() / 1000.0), ToString(mon.state()),
           std::to_string(sw->stats().congestion_signals)});
  }
  t.Print();
  return 0;
}
