// §5.8 Generalization: Gimbal on a different SSD (Intel P3600-like 2-bit
// MLC: lower 128K read bandwidth, higher random-write throughput), with
// Thresh_max retuned to 3 ms as the paper does.
//
// Paper shape: f-Utils stay in the same band as on the DCT983 —
// clean read/write ~0.63/0.72, fragmented read/write ~0.58/0.90.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

void RunCondition(const char* label, SsdCondition cond, uint32_t io_bytes) {
  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, cond);
  cfg.ssd = ssd::SsdConfig::IntelP3600Like();
  cfg.ssd.logical_bytes = 512ull << 20;
  cfg.gimbal.thresh_max = Milliseconds(3);  // §5.8 retune
  cfg.gimbal.write_cost_worst = 7.0;        // MLC asymmetry is milder

  FioSpec rd = PaperSpec(io_bytes, false, 0);
  rd.sequential = (cond == SsdCondition::kClean);
  FioSpec wr = PaperSpec(io_bytes, true, 0);
  double sa = workload::StandaloneBandwidth(cfg, rd);
  double sb = workload::StandaloneBandwidth(cfg, wr);

  Testbed bed(cfg);
  for (int i = 0; i < 16; ++i) {
    FioSpec s = rd;
    s.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    bed.AddWorker(s);
  }
  for (int i = 0; i < 16; ++i) {
    FioSpec s = wr;
    s.seed = static_cast<uint64_t>(i) + 101 + g_seed;
    bed.AddWorker(s);
  }
  bed.Run(Milliseconds(400), Seconds(1));
  uint64_t rd_bytes = 0, wr_bytes = 0;
  for (size_t i = 0; i < 16; ++i) {
    rd_bytes += bed.workers()[i]->stats().total_bytes();
  }
  for (size_t i = 16; i < 32; ++i) {
    wr_bytes += bed.workers()[i]->stats().total_bytes();
  }
  double rd_per = RateBps(rd_bytes, bed.measured()) / 16;
  double wr_per = RateBps(wr_bytes, bed.measured()) / 16;
  Table t(label);
  t.Columns({"class", "agg_MBps", "f_util"});
  t.Row({"read", Table::MBps(rd_per * 16),
         Table::Num(workload::FUtil(rd_per, sa, 32), 2)});
  t.Row({"write", Table::MBps(wr_per * 16),
         Table::Num(workload::FUtil(wr_per, sb, 32), 2)});
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Generalization - Gimbal on an Intel P3600-like MLC SSD",
      "Gimbal (SIGCOMM'21) §5.8",
      "f-Util bands comparable to the DCT983: clean ~0.6-0.7, fragmented "
      "read ~0.6 / write ~0.9");
  RunCondition("Clean condition (128KB IOs, Thresh_max=3ms)",
               SsdCondition::kClean, 131072);
  RunCondition("Fragmented condition (4KB IOs, Thresh_max=3ms)",
               SsdCondition::kFragmented, 4096);
  return 0;
}
