// Figure 19 (Appendix D): two competing streams with identical shape but
// stream1 at twice stream2's queue depth, sweeping the IO size.
//
// Paper shape: the more intense stream takes ~2x the bandwidth for random
// reads and ~1.8x for sequential writes, across sizes.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 19 - IO intensity interference (stream1 QD = 2 x stream2 QD)",
      "Gimbal (SIGCOMM'21) Figure 19 / Appendix D",
      "the deeper stream takes ~2x bandwidth regardless of IO size");

  Table t("Bandwidth (MB/s) on a vanilla target, clean SSD");
  t.Columns({"io_size", "s1_rnd_rd", "s2_rnd_rd", "rd_ratio", "s1_seq_wr",
             "s2_seq_wr", "wr_ratio"});
  for (uint32_t kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    std::vector<std::string> row{std::to_string(kb) + "KB"};
    std::vector<double> ratios;
    for (bool is_write : {false, true}) {
      TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
      Testbed bed(cfg);
      uint32_t qd2 = kb >= 128 ? 4u : 16u;
      FioSpec s1;
      s1.io_bytes = kb * 1024;
      s1.read_ratio = is_write ? 0.0 : 1.0;
      s1.sequential = is_write;
      s1.queue_depth = qd2 * 2;
      s1.seed = 1 + g_seed;
      FioSpec s2 = s1;
      s2.queue_depth = qd2;
      s2.seed = 2 + g_seed;
      FioWorker& w1 = bed.AddWorker(s1);
      FioWorker& w2 = bed.AddWorker(s2);
      bed.Run(Milliseconds(200), Milliseconds(500));
      double b1 = WorkerMBps(w1, bed.measured());
      double b2 = WorkerMBps(w2, bed.measured());
      row.push_back(Table::Num(b1));
      row.push_back(Table::Num(b2));
      ratios.push_back(b2 > 0 ? b1 / b2 : 0);
      if (!is_write) row.push_back(Table::Num(ratios.back(), 2));
    }
    row.push_back(Table::Num(ratios.back(), 2));
    t.Row(row);
  }
  t.Print();
  return 0;
}
