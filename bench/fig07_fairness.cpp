// Figure 7: fairness (f-Util) under mixed workloads for the four schemes.
//   (a/d) clean SSD, 16 x 4KB-read workers + 4 x 128KB-read workers
//   (b/e) clean SSD, 16 x 128KB sequential read + 16 x 128KB random write
//   (c/f) fragmented SSD, 16 x 4KB random read + 16 x 4KB random write
//
// Paper shape: Gimbal's f-Utils sit closest to 1.0 in every mix; ReFlex
// equalizes per-IO bandwidth across sizes (128KB under-served); FlashFQ's
// linear model gives read ~= write bandwidth; Parda collapses on
// fragmented read/write.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

struct Group {
  const char* label;
  FioSpec spec;
  int workers;
};

void RunMix(const char* title, const char* key, SsdCondition cond, Group a,
            Group b) {
  std::printf("\n### %s\n", title);
  Table bw("Per-class results");
  bw.Columns({"scheme", std::string(a.label) + "_MBps",
              std::string(b.label) + "_MBps", std::string(a.label) + "_ios",
              std::string(b.label) + "_ios", std::string(a.label) + "_fUtil",
              std::string(b.label) + "_fUtil"});
  for (Scheme s : workload::kAllSchemes) {
    TestbedConfig cfg = MicroConfig(s, cond);
    // Distinct metric series per (scheme, mix); e.g. run="gimbal:sizes".
    cfg.run_label = std::string(ToString(s)) + ":" + key;
    // Standalone maxima for the f-Util denominators. Quick (golden) runs
    // shrink every window; the f-Util ordering across schemes survives.
    const Tick sa_warm = Quick() ? Milliseconds(100) : Milliseconds(300);
    const Tick sa_meas = Quick() ? Milliseconds(150) : Milliseconds(500);
    double sa = workload::StandaloneBandwidth(cfg, a.spec, sa_warm, sa_meas);
    double sb = workload::StandaloneBandwidth(cfg, b.spec, sa_warm, sa_meas);
    Testbed bed(cfg);
    for (int i = 0; i < a.workers; ++i) {
      FioSpec spec = a.spec;
      spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
      bed.AddWorker(spec);
    }
    for (int i = 0; i < b.workers; ++i) {
      FioSpec spec = b.spec;
      spec.seed = static_cast<uint64_t>(i) + 101 + g_seed;
      bed.AddWorker(spec);
    }
    if (Quick()) {
      bed.Run(Milliseconds(100), Milliseconds(250));
    } else {
      bed.Run(Milliseconds(400), Seconds(1));
    }
    const int total = a.workers + b.workers;
    uint64_t bytes_a = 0, bytes_b = 0, ios_a = 0, ios_b = 0;
    for (int i = 0; i < a.workers; ++i) {
      bytes_a += bed.workers()[static_cast<size_t>(i)]->stats().total_bytes();
      ios_a += bed.workers()[static_cast<size_t>(i)]->stats().total_ios();
    }
    for (int i = a.workers; i < total; ++i) {
      bytes_b += bed.workers()[static_cast<size_t>(i)]->stats().total_bytes();
      ios_b += bed.workers()[static_cast<size_t>(i)]->stats().total_ios();
    }
    double bps_a = RateBps(bytes_a, bed.measured()) / a.workers;
    double bps_b = RateBps(bytes_b, bed.measured()) / b.workers;
    // The _ios columns count client-observed completions and equal the sum
    // of this run's client.completed metric (see docs/OBSERVABILITY.md).
    bw.Row({ToString(s), Table::MBps(bps_a * a.workers),
            Table::MBps(bps_b * b.workers), std::to_string(ios_a),
            std::to_string(ios_b),
            Table::Num(workload::FUtil(bps_a, sa, total), 2),
            Table::Num(workload::FUtil(bps_b, sb, total), 2)});
  }
  bw.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 7 - Fairness (f-Util) in mixed workloads",
      "Gimbal (SIGCOMM'21) Figure 7",
      "Gimbal closest to f-Util=1.0 across size and type mixes; baselines "
      "deviate by large factors");

  {
    Group small{"4KB_rd", PaperSpec(4096, false, 0), 16};
    Group big{"128KB_rd", PaperSpec(131072, false, 0), 4};
    RunMix("(a/d) Clean SSD: 16 x 4KB read + 4 x 128KB read", "sizes",
           SsdCondition::kClean, small, big);
  }
  {
    FioSpec rd = PaperSpec(131072, false, 0);
    rd.sequential = true;  // paper: 128KB sequential read
    Group read{"seq_rd", rd, 16};
    FioSpec wr = PaperSpec(131072, true, 0);
    wr.sequential = false;  // paper: 128KB random write
    Group write{"rnd_wr", wr, 16};
    RunMix("(b/e) Clean SSD: 16 x 128KB seq read + 16 x 128KB rand write",
           "types", SsdCondition::kClean, read, write);
  }
  {
    Group read{"rnd_rd", PaperSpec(4096, false, 0), 16};
    Group write{"rnd_wr", PaperSpec(4096, true, 0), 16};
    RunMix("(c/f) Fragmented SSD: 16 x 4KB read + 16 x 4KB write", "frag",
           SsdCondition::kFragmented, read, write);
  }
  return 0;
}
