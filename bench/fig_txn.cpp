// fig_txn: transactional multi-key KV workload (docs/WORKLOADS.md).
//
// TPC-C-lite (NewOrder/Payment mixes, workload/tpcc.h) through the strict
// 2PL transaction layer (kv/txn.h) over 2 RocksDB-like instances on 3
// replicated SSDs. The matrix sweeps the three conflict protocols
// (NO_WAIT, WAIT_DIE, WOUND_WAIT) against low contention (8 warehouses)
// and high contention (1 warehouse, every terminal hammering the same
// warehouse/district rows), plus a faulted WAIT_DIE/high-contention run
// where SSD 0 throws a media-error burst and SSD 1 fails and recovers
// mid-run — commit acks ride the WAL group-commit path, so faults stretch
// commit latency but can never lose a committed transaction.
//
// Self-checks (the transactional contract, docs/TESTING.md):
//   * the invariant checker (collect-everything mode) stayed silent in
//     every cell — covers txn.commit.lost == 0, balanced lock ledgers
//     (drain.txn.locks), two-phase discipline, wound-order legality,
//   * the serializability oracle saw zero stamp mismatches anywhere,
//   * every submitted transaction reached a terminal state and every lock
//     table drained to idle,
//   * NO_WAIT never queued a waiter; wounds happened only under
//     WOUND_WAIT; high contention actually exercised waits/aborts,
//   * the faulted run committed transactions through the fault window.
//
// Fault knobs (defaults in parentheses; see EXPERIMENTS.md):
//   --fault-media-p=P   media-error probability per IO in the burst (0.2)
//   --fault-seed=N      fault RNG seed (1)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/invariants.h"
#include "kv/cluster.h"
#include "kv/txn.h"
#include "obs/schema.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::TxnClient;
using kv::TxnCoordinator;
using kv::TxnProtocol;

namespace {

struct FaultKnobs {
  double media_p = 0.2;
  uint64_t seed = 1;
};

bool TakeDouble(const char* arg, const char* prefix, double* out) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = std::atof(arg + n);
  return true;
}

// Strip --fault-* flags (consumed here) so ObsSession sees only its own.
FaultKnobs ParseFaultFlags(int* argc, char** argv) {
  FaultKnobs k;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    double v = 0;
    if (TakeDouble(argv[i], "--fault-media-p=", &v)) {
      k.media_p = v;
    } else if (TakeDouble(argv[i], "--fault-seed=", &v)) {
      k.seed = static_cast<uint64_t>(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return k;
}

constexpr int kInstances = 2;
constexpr int kSsds = 3;
constexpr int kTerminals = 8;  // closed-loop terminals per instance
constexpr int kLowWarehouses = 8;
constexpr int kHighWarehouses = 1;

inline Tick Scaled(Tick t) { return Quick() ? t / 2 : t; }
inline Tick Warmup() { return Scaled(Milliseconds(30)); }
inline Tick Measure() { return Scaled(Milliseconds(200)); }

struct RunConfig {
  TxnProtocol protocol = TxnProtocol::kWaitDie;
  int warehouses = kLowWarehouses;
  bool faulted = false;
  std::string label;  // unique metrics run label, e.g. "wait_die:hi"
};

struct RunResult {
  // Coordinator totals across instances (whole run, warmup included).
  uint64_t submitted = 0;
  uint64_t commits = 0;
  uint64_t attempt_aborts = 0;
  uint64_t retries = 0;
  uint64_t failed = 0;
  uint64_t stamp_mismatches = 0;
  // Lock-manager totals.
  uint64_t waits = 0;
  uint64_t wounds = 0;
  uint64_t upgrades = 0;
  uint64_t lock_aborts = 0;
  uint64_t max_queue_depth = 0;
  bool locks_idle = false;
  // Client view of the measurement window.
  uint64_t committed = 0;
  uint64_t new_orders = 0;
  uint64_t payments = 0;
  double ktps = 0;  // committed txns/s (thousands)
  double commit_p50_us = 0;
  double commit_p99_us = 0;
  double attempts_per_txn = 0;
  // Fault handling (faulted run only).
  uint64_t failover_reads = 0;
  uint64_t degraded_writes = 0;
  uint64_t wal_retries = 0;
  fault::FaultInjector::FaultCounters faults;
  bool checker_ok = false;
  size_t checker_violations = 0;
};

RunResult RunCell(const RunConfig& rc, const FaultKnobs& k) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.target.cores = kSsds;
  cfg.testbed.condition = SsdCondition::kClean;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.queue_impl = g_queue;
  cfg.testbed.threads = g_threads;
  cfg.testbed.check = &chk;
  cfg.testbed.fault_seed = k.seed;
  cfg.testbed.run_label = rc.label;
  cfg.hba.backend_bytes = 256ull << 20;
  // Small memtable: commit batches flush to SSTables during the run, so
  // locked reads pay device IO and the fault window reaches the read path.
  cfg.db.memtable_bytes = 64ull << 10;
  const Tick t0 = Warmup();
  if (rc.faulted) {
    cfg.testbed.faults.media_errors.push_back(
        {0, t0 + Scaled(Milliseconds(20)), t0 + Scaled(Milliseconds(90)),
         k.media_p, Microseconds(200)});
    cfg.testbed.faults.failures.push_back(
        {1, t0 + Scaled(Milliseconds(100)), t0 + Scaled(Milliseconds(160))});
  }
  KvCluster cluster(cfg);

  std::vector<std::unique_ptr<TxnCoordinator>> coords;
  std::vector<std::unique_ptr<TxnClient>> clients;
  for (int i = 0; i < kInstances; ++i) {
    auto& inst = cluster.AddInstance();
    TxnCoordinator::Config ccfg;
    ccfg.protocol = rc.protocol;
    ccfg.max_attempts = 0;  // retry until committed; drain sets give_up
    coords.push_back(
        std::make_unique<TxnCoordinator>(cluster.sim(), *inst.db, ccfg));
    coords.back()->AttachObservability(CurrentObs(), inst.id);
    coords.back()->AttachChecker(&chk);
    workload::TpccSpec spec;
    spec.warehouses = rc.warehouses;
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(std::make_unique<TxnClient>(
        cluster.sim(), *coords.back(), spec, kTerminals));
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Warmup());
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) obs->metrics.ResetRun(cfg.testbed.run_label);
  cluster.sim().RunUntil(Warmup() + Measure());

  // Drain: stop the terminals, let in-flight transactions finish (aborted
  // attempts now terminate instead of retrying), then quiesce the fabric.
  for (auto& c : clients) c->Stop();
  for (auto& co : coords) co->set_give_up(true);
  cluster.sim().RunUntil(cluster.sim().now() + Scaled(Milliseconds(100)));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  RunResult r;
  r.locks_idle = true;
  LatencyHistogram commit_lat;
  for (int i = 0; i < kInstances; ++i) {
    const auto& cs = coords[static_cast<size_t>(i)]->stats();
    r.submitted += cs.submitted;
    r.commits += cs.commits;
    r.attempt_aborts += cs.attempt_aborts;
    r.retries += cs.retries;
    r.failed += cs.failed;
    r.stamp_mismatches += cs.stamp_mismatches;
    const auto& ls = coords[static_cast<size_t>(i)]->locks().stats();
    r.waits += ls.waits;
    r.wounds += ls.wounds;
    r.upgrades += ls.upgrades;
    r.lock_aborts += ls.aborts;
    r.max_queue_depth = std::max(r.max_queue_depth, ls.max_queue_depth);
    r.locks_idle = r.locks_idle && coords[static_cast<size_t>(i)]->locks().idle();
    const auto& ts = clients[static_cast<size_t>(i)]->stats();
    r.committed += ts.committed;
    r.new_orders += ts.new_orders;
    r.payments += ts.payments;
    commit_lat.Merge(ts.commit_latency);
    const auto& inst = *cluster.instances()[static_cast<size_t>(i)];
    const auto& bs = inst.blobs->stats();
    r.failover_reads += bs.failover_reads;
    r.degraded_writes += bs.degraded_writes;
    r.wal_retries += inst.db->stats().wal_retries;
  }
  r.ktps = static_cast<double>(r.committed) / ToSec(Measure()) / 1000.0;
  r.commit_p50_us = static_cast<double>(commit_lat.p50()) / 1000.0;
  r.commit_p99_us = static_cast<double>(commit_lat.p99()) / 1000.0;
  r.attempts_per_txn =
      r.submitted == 0
          ? 0
          : static_cast<double>(r.commits + r.attempt_aborts) /
                static_cast<double>(r.submitted);
  r.faults = cluster.bed().faults().counters();
  chk.CheckDrained();
  r.checker_ok = chk.ok();
  r.checker_violations = chk.violations().size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  FaultKnobs knobs = ParseFaultFlags(&argc, argv);
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "fig_txn - TPC-C-lite transactions under 2PL (2 instances, 3 SSDs)",
      "transactional extension (docs/WORKLOADS.md); not a paper figure",
      "protocol x contention sweep; zero lost committed transactions, "
      "balanced lock ledgers, serializability oracle clean");

  const TxnProtocol kProtocols[] = {TxnProtocol::kNoWait,
                                    TxnProtocol::kWaitDie,
                                    TxnProtocol::kWoundWait};
  // results[p][0] = low contention, [p][1] = high contention.
  RunResult results[3][2];
  for (int p = 0; p < 3; ++p) {
    for (int c = 0; c < 2; ++c) {
      RunConfig rc;
      rc.protocol = kProtocols[p];
      rc.warehouses = c == 0 ? kLowWarehouses : kHighWarehouses;
      rc.label = std::string(ToString(rc.protocol)) + (c == 0 ? ":lo" : ":hi");
      results[p][c] = RunCell(rc, knobs);
    }
  }
  RunConfig frc;
  frc.protocol = TxnProtocol::kWaitDie;
  frc.warehouses = kHighWarehouses;
  frc.faulted = true;
  frc.label = "wait_die:hi:faulted";
  const RunResult faulted = RunCell(frc, knobs);
  const RunResult& fcontrol = results[1][1];  // wait_die:hi

  Table sweep("Protocol x contention (TPC-C-lite, committed transactions)");
  sweep.Columns({"protocol", "contention", "ktps", "p50_us", "p99_us",
                 "att/txn", "waits", "wounds", "aborts", "retries"});
  for (int p = 0; p < 3; ++p) {
    for (int c = 0; c < 2; ++c) {
      const RunResult& r = results[p][c];
      sweep.Row({kv::ToString(kProtocols[p]), c == 0 ? "low" : "high",
                 Table::Num(r.ktps), Table::Num(r.commit_p50_us, 1),
                 Table::Num(r.commit_p99_us, 1),
                 Table::Num(r.attempts_per_txn, 2),
                 Table::Num(double(r.waits), 0),
                 Table::Num(double(r.wounds), 0),
                 Table::Num(double(r.attempt_aborts), 0),
                 Table::Num(double(r.retries), 0)});
    }
  }
  sweep.Print();

  Table mix("Transaction mix (committed, per cell)");
  mix.Columns({"protocol", "contention", "new_orders", "payments",
               "upgrades", "max_queue"});
  for (int p = 0; p < 3; ++p) {
    for (int c = 0; c < 2; ++c) {
      const RunResult& r = results[p][c];
      mix.Row({kv::ToString(kProtocols[p]), c == 0 ? "low" : "high",
               Table::Num(double(r.new_orders), 0),
               Table::Num(double(r.payments), 0),
               Table::Num(double(r.upgrades), 0),
               Table::Num(double(r.max_queue_depth), 0)});
    }
  }
  mix.Print();

  Table ft("WAIT_DIE high contention: control vs faulted");
  ft.Columns({"run", "ktps", "p99_us", "aborts", "failover_reads",
              "degraded_writes", "wal_retries"});
  ft.Row({"control", Table::Num(fcontrol.ktps),
          Table::Num(fcontrol.commit_p99_us, 1),
          Table::Num(double(fcontrol.attempt_aborts), 0),
          Table::Num(double(fcontrol.failover_reads), 0),
          Table::Num(double(fcontrol.degraded_writes), 0),
          Table::Num(double(fcontrol.wal_retries), 0)});
  ft.Row({"faulted", Table::Num(faulted.ktps),
          Table::Num(faulted.commit_p99_us, 1),
          Table::Num(double(faulted.attempt_aborts), 0),
          Table::Num(double(faulted.failover_reads), 0),
          Table::Num(double(faulted.degraded_writes), 0),
          Table::Num(double(faulted.wal_retries), 0)});
  ft.Print();

  // --- Self-checks (the transactional contract) ---------------------------
  auto all_cells = [&](auto fn) {
    bool ok = fn(faulted);
    for (int p = 0; p < 3; ++p) {
      for (int c = 0; c < 2; ++c) ok = ok && fn(results[p][c]);
    }
    return ok;
  };
  struct Check {
    const char* name;
    bool pass;
  } checks[] = {
      {"invariant checker silent in every cell (incl. drain)",
       all_cells([](const RunResult& r) {
         return r.checker_ok && r.checker_violations == 0;
       })},
      {"serializability oracle clean (0 stamp mismatches)",
       all_cells([](const RunResult& r) { return r.stamp_mismatches == 0; })},
      {"every transaction terminal, every lock table idle",
       all_cells([](const RunResult& r) {
         return r.submitted == r.commits + r.failed && r.locks_idle;
       })},
      {"every cell committed transactions",
       all_cells([](const RunResult& r) { return r.commits > 0; })},
      {"S->X upgrades exercised in every cell",
       all_cells([](const RunResult& r) { return r.upgrades > 0; })},
      {"NO_WAIT never queued a waiter",
       results[0][0].waits == 0 && results[0][1].waits == 0},
      {"wounds only under WOUND_WAIT",
       results[0][0].wounds == 0 && results[0][1].wounds == 0 &&
           results[1][0].wounds == 0 && results[1][1].wounds == 0 &&
           faulted.wounds == 0 && results[2][1].wounds > 0},
      {"high contention exercised conflicts (aborts or waits)",
       results[0][1].lock_aborts > 0 && results[1][1].waits > 0 &&
           results[2][1].waits > 0},
      {"faulted run: faults injected and handled through commits",
       faulted.faults.media_errors + faulted.faults.device_failed_ios > 0 &&
           faulted.failover_reads + faulted.degraded_writes +
                   faulted.wal_retries >
               0 &&
           faulted.commits > 0},
  };
  bool all = true;
  std::printf("\n");
  for (const Check& c : checks) {
    all = all && c.pass;
    std::printf("%-60s %s\n", c.name, c.pass ? "PASS" : "FAIL");
  }
  return all ? 0 : 1;
}
