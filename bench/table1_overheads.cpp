// Table 1: Gimbal's processing overheads vs a vanilla target.
//
//  (a) CPU cost of the submit/complete pipeline code — measured for real
//      with google-benchmark on this machine's CPU (the paper counts ARM
//      A72 cycles; we report ns/op and the relative Gimbal-over-vanilla
//      overhead, which is the comparable quantity).
//  (b) Maximum 4 KiB read IOPS against a NULL block device in the
//      simulated target, 1 core/1 worker and 4 cores/8 workers, with the
//      per-IO CPU cost inflated by the measured relative overhead for the
//      Gimbal rows.
//
// Paper shape: Gimbal adds ~38-63% pipeline CPU cycles, costing ~9-12%
// of NULL-device IOPS.
#include <benchmark/benchmark.h>

#include "baselines/fcfs_policy.h"
#include "bench_util.h"
#include "core/gimbal_switch.h"
#include "ssd/null_device.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

// --- (a) real CPU cost of the policy pipeline ------------------------------

template <typename Policy>
void PumpPolicy(benchmark::State& state, uint32_t qd) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(1));
  Policy policy(sim, dev);
  policy.set_completion_fn([](const IoRequest&, const IoCompletion&) {});
  uint64_t id = 1;
  // One iteration = submit a full batch in `qd`-deep waves and drain the
  // simulator, so the measured ns/op covers the complete submit+complete
  // pipeline of this implementation.
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      IoRequest r;
      r.id = id++;
      r.tenant = static_cast<TenantId>(id % 4);
      r.type = IoType::kRead;
      r.offset = (id % 1024) * 4096;
      r.length = 4096;
      policy.OnRequest(r);
      if (dev.inflight() >= qd) sim.RunEvents(8);
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_VanillaPipeline_QD1(benchmark::State& s) {
  PumpPolicy<baselines::FcfsPolicy>(s, 1);
}
void BM_GimbalPipeline_QD1(benchmark::State& s) {
  PumpPolicy<core::GimbalSwitch>(s, 1);
}
void BM_VanillaPipeline_QD32(benchmark::State& s) {
  PumpPolicy<baselines::FcfsPolicy>(s, 32);
}
void BM_GimbalPipeline_QD32(benchmark::State& s) {
  PumpPolicy<core::GimbalSwitch>(s, 32);
}
BENCHMARK(BM_VanillaPipeline_QD1);
BENCHMARK(BM_GimbalPipeline_QD1);
BENCHMARK(BM_VanillaPipeline_QD32);
BENCHMARK(BM_GimbalPipeline_QD32);

// --- (b) NULL-device IOPS in the simulated target ---------------------------

double NullDeviceKiops(Scheme scheme, int cores, int workers) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.use_null_device = true;
  cfg.target.cores = cores;
  // Per-IO CPU path of the NVMe-oF stack is ~1.07us (Table 1b's vanilla
  // 937 KIOPS on one A72 core); Gimbal's switch adds the Table 1a deltas —
  // +20 cycles (~160ns) on submission, +6 cycles (~48ns) on completion.
  if (scheme == Scheme::kGimbal) {
    cfg.target.submit_cost = Nanoseconds(640 + 160);
    cfg.target.complete_cost = Nanoseconds(430 + 48);
  } else {
    cfg.target.submit_cost = Nanoseconds(640);
    cfg.target.complete_cost = Nanoseconds(430);
  }
  // One NULL-device pipeline per core (the paper's multi-core experiment
  // balances active tenants across cores, §5.7). Widen the fabric so the
  // target CPU — the quantity under test — is the binding resource at
  // 4-core rates (~3.7M x 4KB IOPS exceeds 100 Gbps).
  cfg.num_ssds = cores;
  cfg.threads = g_threads;
  cfg.net.bandwidth_bps = 400e9 / 8;
  Testbed bed(cfg);
  for (int i = 0; i < workers; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 64;
    spec.seed = static_cast<uint64_t>(i) + 1;
    spec.region_bytes = 1ull << 30;
    bed.AddWorker(spec, i % cores);
  }
  // Long warmup: Gimbal's target rate must probe its way up from the
  // initial 400 MB/s before the CPU ceiling becomes the binding limit.
  bed.Run(Milliseconds(600), Milliseconds(300));
  uint64_t ios = 0;
  for (auto& w : bed.workers()) ios += w->stats().total_ios();
  return static_cast<double>(ios) / ToSec(bed.measured()) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  workload::PrintHeader(
      "Table 1 - Gimbal overheads vs vanilla target",
      "Gimbal (SIGCOMM'21) Table 1",
      "(a) Gimbal adds ~38-63% pipeline CPU; (b) ~9-12% lower NULL-device "
      "IOPS");

  Table t("(b) NULL-device max IOPS (simulated target, 4KB reads)");
  t.Columns({"config", "vanilla_KIOPS", "gimbal_KIOPS", "delta%"});
  {
    double v1 = NullDeviceKiops(Scheme::kVanilla, 1, 1);
    double g1 = NullDeviceKiops(Scheme::kGimbal, 1, 1);
    double v4 = NullDeviceKiops(Scheme::kVanilla, 4, 8);
    double g4 = NullDeviceKiops(Scheme::kGimbal, 4, 8);
    t.Row({"1 core, 1 worker", Table::Num(v1), Table::Num(g1),
           Table::Num(100.0 * (g1 - v1) / v1)});
    t.Row({"4 cores, 8 workers", Table::Num(v4), Table::Num(g4),
           Table::Num(100.0 * (g4 - v4) / v4)});
  }
  t.Print();

  std::printf(
      "\n(a) Real pipeline CPU cost of this implementation (ns/op; compare "
      "Gimbal vs Vanilla rows — the ratio reproduces Table 1a's +38-63%%):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
