// Figure 2: unloaded read/write latency vs IO request size, SmartNIC JBOF
// vs server JBOF.
//
// Paper shape: random-read latencies are nearly identical up to 64 KiB
// (~1% gap) and diverge ~20% at 128/256 KiB; sequential writes differ by
// only a few microseconds everywhere.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double UnloadedLatencyUs(fabric::TargetConfig target, uint32_t io_kb,
                         bool is_write) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  cfg.target = target;
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = io_kb * 1024;
  spec.read_ratio = is_write ? 0.0 : 1.0;
  spec.sequential = is_write;
  spec.queue_depth = 1;  // unloaded
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(50), Milliseconds(300));
  auto& h = is_write ? w.stats().write_latency : w.stats().read_latency;
  return h.mean() / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 2 - Unloaded latency vs IO size (QD1)",
      "Gimbal (SIGCOMM'21) Figure 2",
      "SmartNIC ~= server for <=64KB reads; ~20% slower at 128/256KB; "
      "writes within a few microseconds everywhere");

  Table t("Average latency (us), random read & sequential write");
  t.Columns({"io_size", "server_rd", "smartnic_rd", "rd_gap%", "server_wr",
             "smartnic_wr", "wr_gap_us"});
  for (uint32_t kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    double srv_rd = UnloadedLatencyUs(fabric::TargetConfig::ServerLike(), kb,
                                      false);
    double nic_rd = UnloadedLatencyUs(fabric::TargetConfig::SmartNicLike(),
                                      kb, false);
    double srv_wr = UnloadedLatencyUs(fabric::TargetConfig::ServerLike(), kb,
                                      true);
    double nic_wr = UnloadedLatencyUs(fabric::TargetConfig::SmartNicLike(),
                                      kb, true);
    t.Row({std::to_string(kb) + "KB", Table::Num(srv_rd), Table::Num(nic_rd),
           Table::Num(100.0 * (nic_rd - srv_rd) / srv_rd),
           Table::Num(srv_wr), Table::Num(nic_wr),
           Table::Num(nic_wr - srv_wr)});
  }
  t.Print();
  return 0;
}
