// Figure 14 (Appendix A): 4 KiB IO bandwidth as the read ratio sweeps
// 0..100%, on clean vs fragmented SSDs (raw device behaviour, vanilla
// target).
//
// Paper shape: fragmented write-only reaches ~17% of clean write-only;
// adding 5% writes to a fragmented read stream drops total IOPS ~40%+.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 14 - 4KB bandwidth vs read ratio, clean vs fragmented",
      "Gimbal (SIGCOMM'21) Figure 14 / Appendix A",
      "fragmented write path collapses to ~17% of clean; small write "
      "fractions disproportionately hurt fragmented total throughput");

  Table t("Bandwidth (MB/s), 4 workers x QD32, 4KB random");
  t.Columns({"read_pct", "clean_rd", "clean_wr", "frag_rd", "frag_wr"});
  for (int pct : {0, 5, 10, 20, 40, 60, 80, 95, 100}) {
    std::vector<std::string> row{std::to_string(pct)};
    for (SsdCondition cond :
         {SsdCondition::kClean, SsdCondition::kFragmented}) {
      TestbedConfig cfg = MicroConfig(Scheme::kVanilla, cond);
      Testbed bed(cfg);
      for (int i = 0; i < 4; ++i) {
        FioSpec spec;
        spec.io_bytes = 4096;
        spec.queue_depth = 32;
        spec.read_ratio = pct / 100.0;
        spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
        bed.AddWorker(spec);
      }
      // The clean condition is inherently transient under random writes
      // (it is *being* fragmented); our device is ~1000x smaller than the
      // paper's 960 GB drive, so the transient is proportionally shorter.
      // Measure the clean rows over a short early window.
      if (cond == SsdCondition::kClean && pct < 100) {
        bed.Run(Milliseconds(20), Milliseconds(80));
      } else {
        bed.Run(Milliseconds(500), Seconds(1));
      }
      uint64_t rd = 0, wr = 0;
      for (auto& w : bed.workers()) {
        rd += w->stats().read_bytes;
        wr += w->stats().write_bytes;
      }
      row.push_back(Table::MBps(RateBps(rd, bed.measured())));
      row.push_back(Table::MBps(RateBps(wr, bed.measured())));
    }
    t.Row(row);
  }
  t.Print();
  return 0;
}
