// Figure 9: dynamic workload timeline. 8 rate-capped readers (200 MB/s)
// run from t=0; rate-capped writers (60 MB/s) arrive one at a time, then
// readers depart one at a time (intervals scaled down from the paper's 5 s
// to 1 s of simulated time).
//
// Paper shape: the first writer is absorbed by the SSD write buffer
// (write cost -> 1, ~70us write latency while reads sit ~1000us); as more
// writers arrive the buffer saturates, latency jumps ~10x, the write cost
// estimator climbs, and writer bandwidths converge to the fair share.
#include "bench_util.h"

#include "core/gimbal_switch.h"

using namespace gimbal;
using namespace gimbal::bench;

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 9 - Dynamic workload timeline (Gimbal, fragmented SSD)",
      "Gimbal (SIGCOMM'21) Figure 9 / §5.5",
      "first writer rides the write buffer at cost~1; once writers exceed "
      "buffer drain, write cost rises and writer bandwidth converges to "
      "the fair share");

  TestbedConfig cfg = MicroConfig(Scheme::kGimbal, SsdCondition::kFragmented);
  Testbed bed(cfg);

  const int kReaders = 8, kWriters = 8;
  for (int i = 0; i < kReaders; ++i) {
    FioSpec rd = PaperSpec(4096, false, static_cast<uint64_t>(i) + 1);
    rd.rate_cap_bps = 200.0 * 1024 * 1024;
    rd.queue_depth = 16;
    bed.AddWorker(rd);
  }
  for (int i = 0; i < kWriters; ++i) {
    FioSpec wr = PaperSpec(4096, true, static_cast<uint64_t>(i) + 101);
    wr.rate_cap_bps = 60.0 * 1024 * 1024;
    wr.queue_depth = 16;
    bed.AddWorker(wr);  // created now, started on schedule below
  }

  auto& sim = bed.sim();
  // Phase plan (scaled 5s -> 1s): writers join at 1s..8s, readers drop at
  // 9s..16s. Quick (golden) runs compress the whole timeline a further 8x
  // (also keeping the digest trace under its 4M-event cap); the
  // buffer-absorb-then-converge shape survives.
  const double ph = Quick() ? 0.125 : 1.0;
  for (int i = 0; i < kReaders; ++i) bed.workers()[static_cast<size_t>(i)]->Start();
  for (int i = 0; i < kWriters; ++i) {
    sim.At(Seconds(ph * (i + 1)), [&bed, i]() {
      bed.workers()[static_cast<size_t>(kReaders + i)]->Start();
    });
  }
  for (int i = 0; i < kReaders; ++i) {
    sim.At(Seconds(ph * (9.0 + i)), [&bed, i]() {
      bed.workers()[static_cast<size_t>(i)]->Stop();
    });
  }

  Table t("Timeline (sampled every 500 ms)");
  t.Columns({"t_sec", "rd_workers", "wr_workers", "rd_MBps_per_worker",
             "wr_MBps_per_worker", "rd_lat_us", "wr_lat_us", "write_cost"});

  std::vector<uint64_t> last_bytes(bed.workers().size(), 0);
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  const Tick step = Quick() ? Milliseconds(125) : Milliseconds(500);
  for (Tick now = 0; now < static_cast<Tick>(ph * Seconds(17)); now += step) {
    sim.RunUntil(now + step);
    int rd_n = 0, wr_n = 0;
    uint64_t rd_bytes = 0, wr_bytes = 0;
    LatencyHistogram rd_lat, wr_lat;
    for (size_t i = 0; i < bed.workers().size(); ++i) {
      auto& w = *bed.workers()[i];
      uint64_t bytes = w.stats().total_bytes();
      uint64_t delta = bytes - last_bytes[i];
      last_bytes[i] = bytes;
      if (i < kReaders) {
        if (w.running()) {
          ++rd_n;
          rd_bytes += delta;
        }
      } else if (w.running()) {
        ++wr_n;
        wr_bytes += delta;
      }
    }
    // Latencies: merge over the sampling window is not tracked per window;
    // report the switch's live EWMA device latencies instead (the paper's
    // Fig 9 lower panel plots raw device latency).
    double rd_ewma = sw->rate_controller()
                         .monitor(IoType::kRead)
                         .ewma_latency() / 1000.0;
    double wr_ewma = sw->rate_controller()
                         .monitor(IoType::kWrite)
                         .ewma_latency() / 1000.0;
    t.Row({Table::Num(ToSec(now + step), 1), std::to_string(rd_n),
           std::to_string(wr_n),
           Table::Num(rd_n ? BytesToMiB(rd_bytes) / ToSec(step) / rd_n : 0),
           Table::Num(wr_n ? BytesToMiB(wr_bytes) / ToSec(step) / wr_n : 0),
           Table::Num(rd_ewma), Table::Num(wr_ewma),
           Table::Num(sw->write_cost().cost(), 2)});
  }
  t.Print();
  return 0;
}
