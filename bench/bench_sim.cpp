// Simulator hot-path microbenchmark (docs/SIMULATOR.md).
//
// Self-timing A/B of the two EventQueue engines — the timing wheel that
// runs every figure and the reference binary heap it replaced — plus a
// wall-clock rerun of a Fig 11-style KV scenario on both engines. Writes
// machine-readable results to BENCH_sim.json (override with --out=PATH)
// so the perf trajectory is tracked across commits; CI runs it with
// --quick and uploads the JSON.
//
// Microbench scenarios (fixed seeds, steady state reached before timing):
//
//   * steady_fire     — the classic "hold" loop: pop the earliest event,
//                       advance time to it, schedule a replacement a random
//                       delta ahead. Pure (time-ordered) queue throughput.
//   * timeout_churn   — same loop, but ~90% of scheduled events are
//                       cancelled before they fire, like the per-IO timeout
//                       timers the fabric arms and tears down on completion.
//   * breakdown       — schedule / cancel / fire phases timed separately.
//
// Each scenario runs at a small and a large pending-set size; the headline
// number (the acceptance gate: >= 1.5x) is timeout_churn at 100k pending,
// the profile closest to a loaded testbed. InlineFn::heap_fallbacks() is
// sampled around the hot loops — a nonzero delta means a closure outgrew
// the inline buffer and the allocation-free claim regressed.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kv/cluster.h"
#include "sim/event_queue.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

using Clock = std::chrono::steady_clock;
using sim::EventQueue;
using sim::TimerHandle;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* ImplName(EventQueue::Impl impl) {
  return impl == EventQueue::Impl::kTimingWheel ? "timing_wheel"
                                                : "reference_heap";
}

// Random schedule-ahead delta, weighted like a testbed: mostly short IO
// stage hops, some millisecond-scale waits, rare sub-microsecond hops.
// One rng draw per delta so the generator stays a small, equal tax on
// both engines.
Tick RandomDelta(std::mt19937_64& rng) {
  const uint64_t r = rng();
  const uint64_t v = r >> 8;
  switch (r & 15) {
    case 0:
      return static_cast<Tick>(v % Microseconds(1) + 1);
    case 1:
    case 2:
    case 3:
      return static_cast<Tick>(v % Milliseconds(10) + Microseconds(1));
    default:
      return static_cast<Tick>(v % Microseconds(100) + 1);
  }
}

struct MicroResult {
  std::string scenario;
  size_t pending;
  uint64_t events;
  double wheel_eps = 0;  // events (pops) per wall-clock second
  double heap_eps = 0;
  double speedup() const { return heap_eps > 0 ? wheel_eps / heap_eps : 0; }
};

// Steady-state hold loop: `pending` events in flight, each pop schedules a
// replacement. With `churn`, every round also arms a 2ms "IO timeout"
// timer and cancels the oldest one — the oldest is ~1 simulated ms young
// at that point, so the cancel lands on a still-pending event, exactly
// like a completion tearing down its timeout. The queue then digests one
// tombstone per round on top of the hold traffic.
double RunHold(EventQueue::Impl impl, size_t pending, uint64_t events,
               bool churn, uint64_t seed) {
  EventQueue q(impl);
  std::mt19937_64 rng(seed);
  Tick now = 0;
  uint64_t fired = 0;
  auto on_fire = [&fired]() { ++fired; };
  for (size_t i = 0; i < pending; ++i) {
    q.Push(now + RandomDelta(rng), on_fire);
  }
  std::deque<TimerHandle> timeouts;  // armed churn timers, oldest first
  const auto step = [&]() {
    Tick when = 0;
    auto fn = q.Pop(&when);
    now = when;
    if (fn) fn();
    q.Push(now + RandomDelta(rng), on_fire);
    if (churn) {
      timeouts.push_back(q.Push(now + Milliseconds(2), on_fire));
      if (timeouts.size() > pending) {
        timeouts.front().Cancel();
        timeouts.pop_front();
      }
    }
  };
  // Warm up: reach steady state (slot distributions, pool and tombstone
  // population) untimed.
  for (uint64_t i = 0; i < 2 * pending; ++i) step();
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < events; ++i) step();
  const double sec = SecondsSince(t0);
  return static_cast<double>(events) / sec;
}

MicroResult RunScenario(const char* name, size_t pending, uint64_t events,
                        bool churn) {
  MicroResult r;
  r.scenario = name;
  r.pending = pending;
  r.events = events;
  r.wheel_eps =
      RunHold(EventQueue::Impl::kTimingWheel, pending, events, churn, 42);
  r.heap_eps =
      RunHold(EventQueue::Impl::kReferenceHeap, pending, events, churn, 42);
  std::printf("  %-14s pending=%-7zu wheel %10.0f ev/s   heap %10.0f ev/s"
              "   speedup %.2fx\n",
              name, pending, r.wheel_eps, r.heap_eps, r.speedup());
  return r;
}

struct Breakdown {
  double schedule_ns = 0;
  double cancel_ns = 0;
  double fire_ns = 0;
};

// Phase-timed costs: N pushes into an idle queue, cancel half by handle,
// then drain the survivors.
Breakdown RunBreakdown(EventQueue::Impl impl, uint64_t n, uint64_t seed) {
  EventQueue q(impl);
  std::mt19937_64 rng(seed);
  uint64_t fired = 0;
  auto on_fire = [&fired]() { ++fired; };
  std::vector<TimerHandle> handles;
  handles.reserve(n);
  Breakdown b;
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < n; ++i) {
    handles.push_back(q.Push(RandomDelta(rng), on_fire));
  }
  b.schedule_ns = SecondsSince(t0) * 1e9 / static_cast<double>(n);
  t0 = Clock::now();
  for (uint64_t i = 0; i < n; i += 2) handles[i].Cancel();
  b.cancel_ns = SecondsSince(t0) * 1e9 / static_cast<double>(n / 2);
  t0 = Clock::now();
  uint64_t pops = 0;
  while (!q.empty()) {
    Tick when = 0;
    auto fn = q.Pop(&when);
    if (fn) fn();
    ++pops;
  }
  b.fire_ns = SecondsSince(t0) * 1e9 / static_cast<double>(pops);
  return b;
}

// Fig 11-style KV point (YCSB-B, Gimbal, fragmented SSDs), run to the same
// simulated instant on both engines; only the wall clock differs.
double Fig11Wallclock(EventQueue::Impl impl, int instances, Tick measure) {
  kv::KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.target.cores = 2;
  cfg.testbed.condition = SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.queue_impl = impl;
  cfg.testbed.run_label = std::string("bench_sim:") + ImplName(impl);
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  kv::KvCluster cluster(cfg);
  std::vector<std::unique_ptr<kv::YcsbClient>> clients;
  for (int i = 0; i < instances; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(5'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kB;
    spec.record_count = 5'000;
    spec.seed = static_cast<uint64_t>(i) + 1;
    clients.push_back(
        std::make_unique<kv::YcsbClient>(cluster.sim(), *inst.db, spec, 16));
  }
  for (auto& c : clients) c->Start();
  const auto t0 = Clock::now();
  cluster.sim().RunUntil(measure);
  return SecondsSince(t0);
}

struct SweepPoint {
  int threads = 0;
  double wall_ms = 0;
  uint64_t epochs = 0;        // engine barrier count (thread-invariant)
  uint64_t idle_wakeups = 0;  // doorbells that claimed nothing
  // Hardware threads visible to *this point's* run. Recorded per point so
  // the CI speedup gate can tell a genuine regression from a starved
  // runner: a point with hardware_threads < threads measured
  // oversubscription, not parallelism, and must be skipped, not failed.
  unsigned hardware_threads = 0;
};

// Sharded-engine threads sweep (docs/SIMULATOR.md): a Fig 11-style KV
// scenario wide enough to shard — one pipeline per target core, six cores —
// run to the same simulated instant at several worker-thread counts. The
// schedule is bit-identical at every count (the determinism suite pins
// that); only the wall clock may move. Serial (threads=1) is the baseline.
SweepPoint ShardedWallclock(int threads, int instances, Tick measure) {
  kv::KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = 6;
  cfg.testbed.target.cores = 6;
  cfg.testbed.condition = SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.threads = threads;
  cfg.testbed.run_label = "bench_sim:threads" + std::to_string(threads);
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  kv::KvCluster cluster(cfg);
  std::vector<std::unique_ptr<kv::YcsbClient>> clients;
  for (int i = 0; i < instances; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(5'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kB;
    spec.record_count = 5'000;
    spec.seed = static_cast<uint64_t>(i) + 1;
    clients.push_back(
        std::make_unique<kv::YcsbClient>(cluster.sim(), *inst.db, spec, 16));
  }
  for (auto& c : clients) c->Start();
  const auto t0 = Clock::now();
  cluster.sim().RunUntil(measure);
  SweepPoint p;
  p.threads = threads;
  p.wall_ms = SecondsSince(t0) * 1e3;
  p.hardware_threads = std::thread::hardware_concurrency();
  if (sim::ShardedEngine* eng = cluster.bed().engine()) {
    p.epochs = eng->epochs();
    p.idle_wakeups = eng->idle_wakeups();
  }
  return p;
}

void JsonEscapePrint(FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_sim.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out = a.substr(6);
    } else if (a == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH] [--quick]\n", argv[0]);
      return 2;
    }
  }

  workload::PrintHeader(
      "bench_sim - EventQueue timing wheel vs reference heap",
      "simulator hot-path overhaul (docs/SIMULATOR.md)",
      "timing wheel >= 1.5x events/sec at testbed-like pending-set sizes");

  const uint64_t kEvents = quick ? 200'000 : 2'000'000;
  const uint64_t fallbacks_before = sim::InlineFn::heap_fallbacks();

  std::printf("\nsteady_fire (pop-advance-push hold loop):\n");
  std::vector<MicroResult> results;
  results.push_back(RunScenario("steady_fire", 1'000, kEvents, false));
  results.push_back(RunScenario("steady_fire", 100'000, kEvents, false));
  std::printf("timeout_churn (every round arms a timeout, cancels one):\n");
  results.push_back(RunScenario("timeout_churn", 1'000, kEvents, true));
  results.push_back(RunScenario("timeout_churn", 100'000, kEvents, true));
  const MicroResult& headline = results.back();

  const uint64_t fallbacks_after = sim::InlineFn::heap_fallbacks();

  const uint64_t kBreakN = quick ? 100'000 : 1'000'000;
  const Breakdown wheel_bd =
      RunBreakdown(EventQueue::Impl::kTimingWheel, kBreakN, 7);
  const Breakdown heap_bd =
      RunBreakdown(EventQueue::Impl::kReferenceHeap, kBreakN, 7);
  std::printf("\nper-op breakdown (ns/op, %llu events):\n",
              static_cast<unsigned long long>(kBreakN));
  std::printf("  %-14s schedule %6.1f   cancel %6.1f   fire %6.1f\n",
              "timing_wheel", wheel_bd.schedule_ns, wheel_bd.cancel_ns,
              wheel_bd.fire_ns);
  std::printf("  %-14s schedule %6.1f   cancel %6.1f   fire %6.1f\n",
              "reference_heap", heap_bd.schedule_ns, heap_bd.cancel_ns,
              heap_bd.fire_ns);

  const int kInstances = quick ? 2 : 4;
  const Tick kMeasure = quick ? Milliseconds(50) : Milliseconds(200);
  const double fig11_wheel =
      Fig11Wallclock(EventQueue::Impl::kTimingWheel, kInstances, kMeasure);
  const double fig11_heap =
      Fig11Wallclock(EventQueue::Impl::kReferenceHeap, kInstances, kMeasure);
  std::printf("\nfig11-style KV rerun (%d instances, %.0f ms simulated):\n",
              kInstances, ToSec(kMeasure) * 1e3);
  std::printf("  timing_wheel   %7.1f ms wall\n", fig11_wheel * 1e3);
  std::printf("  reference_heap %7.1f ms wall   speedup %.2fx\n",
              fig11_heap * 1e3,
              fig11_wheel > 0 ? fig11_heap / fig11_wheel : 0);

  const int kSweepThreads[] = {1, 2, 4};
  const int kSweepInstances = quick ? 6 : 12;
  const Tick kSweepMeasure = quick ? Milliseconds(60) : Milliseconds(200);
  const unsigned hw = std::thread::hardware_concurrency();
  SweepPoint sweep[3];
  std::printf("\nsharded-engine threads sweep (6 SSDs / 6 cores, %d KV "
              "instances, %.0f ms simulated, %u hardware threads):\n",
              kSweepInstances, ToSec(kSweepMeasure) * 1e3, hw);
  if (hw < 4) {
    std::printf("  note: fewer hardware threads than the widest point; "
                "oversubscribed points measure epoch-barrier overhead, "
                "not parallel speedup\n");
  }
  for (size_t i = 0; i < 3; ++i) {
    sweep[i] =
        ShardedWallclock(kSweepThreads[i], kSweepInstances, kSweepMeasure);
    std::printf("  threads=%d  %8.1f ms wall   speedup %.2fx   "
                "epochs %llu   idle_wakeups %llu\n",
                sweep[i].threads, sweep[i].wall_ms,
                sweep[i].wall_ms > 0 ? sweep[0].wall_ms / sweep[i].wall_ms
                                     : 0,
                static_cast<unsigned long long>(sweep[i].epochs),
                static_cast<unsigned long long>(sweep[i].idle_wakeups));
  }

  std::printf("\nInlineFn heap fallbacks over the hot loops: %llu\n",
              static_cast<unsigned long long>(fallbacks_after -
                                              fallbacks_before));
  std::printf("headline (timeout_churn, pending=%zu): %.2fx (target 1.5x)\n",
              headline.pending, headline.speedup());

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_sim\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"inline_fn\": {\"capacity\": %zu, "
               "\"heap_fallbacks_delta\": %llu},\n",
               sim::InlineFn::kInlineCapacity,
               static_cast<unsigned long long>(fallbacks_after -
                                               fallbacks_before));
  std::fprintf(f, "  \"microbench\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MicroResult& r = results[i];
    std::fprintf(f, "    {\"scenario\": ");
    JsonEscapePrint(f, r.scenario);
    std::fprintf(f,
                 ", \"pending\": %zu, \"events\": %llu, "
                 "\"wheel_events_per_sec\": %.0f, "
                 "\"heap_events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 r.pending, static_cast<unsigned long long>(r.events),
                 r.wheel_eps, r.heap_eps, r.speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"breakdown_ns_per_op\": {\n"
               "    \"timing_wheel\": {\"schedule\": %.1f, \"cancel\": %.1f,"
               " \"fire\": %.1f},\n"
               "    \"reference_heap\": {\"schedule\": %.1f, \"cancel\": "
               "%.1f, \"fire\": %.1f}\n  },\n",
               wheel_bd.schedule_ns, wheel_bd.cancel_ns, wheel_bd.fire_ns,
               heap_bd.schedule_ns, heap_bd.cancel_ns, heap_bd.fire_ns);
  std::fprintf(f,
               "  \"fig11_wallclock\": {\"instances\": %d, "
               "\"simulated_ms\": %.0f, \"wheel_ms\": %.1f, "
               "\"heap_ms\": %.1f, \"speedup\": %.3f},\n",
               kInstances, ToSec(kMeasure) * 1e3, fig11_wheel * 1e3,
               fig11_heap * 1e3,
               fig11_wheel > 0 ? fig11_heap / fig11_wheel : 0);
  std::fprintf(f, "  \"threads_sweep\": {\"ssds\": 6, \"instances\": %d, "
               "\"simulated_ms\": %.0f, \"hardware_threads\": %u, "
               "\"points\": [\n",
               kSweepInstances, ToSec(kSweepMeasure) * 1e3, hw);
  for (size_t i = 0; i < 3; ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_ms\": %.1f, "
                 "\"speedup_vs_serial\": %.3f, \"hardware_threads\": %u, "
                 "\"epochs\": %llu, \"idle_wakeups\": %llu}%s\n",
                 sweep[i].threads, sweep[i].wall_ms,
                 sweep[i].wall_ms > 0 ? sweep[0].wall_ms / sweep[i].wall_ms
                                      : 0,
                 sweep[i].hardware_threads,
                 static_cast<unsigned long long>(sweep[i].epochs),
                 static_cast<unsigned long long>(sweep[i].idle_wakeups),
                 i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"headline\": {\"scenario\": \"timeout_churn\", "
               "\"pending\": %zu, \"speedup\": %.3f, \"target\": 1.5}\n}\n",
               headline.pending, headline.speedup());
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
