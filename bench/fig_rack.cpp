// fig_rack: rack-scale multi-tenant storage disaggregation (extension).
//
// Three SmartNIC JBOF nodes (2 SSDs each) behind a shared ToR uplink host
// three replicated KV instances under YCSB-A, run twice: a fault-free
// control and a faulted run where node 1 — both its SSDs and every fabric
// message to or from it — fails whole and recovers mid-run. Replica
// placement is failure-domain aware (copies never share a node), reads
// fail over across node boundaries, and re-replication rides the
// background-priority path until every blob is node-disjoint again.
//
// The tables show rack-level per-tenant fairness and the read tail during
// the outage; the self-checks certify the rack contract:
//
//   * kv.lost_writes == 0 — no acked write lost across the node failure,
//   * the dirty ledger drained: every blob regained a node-disjoint
//     replica set before the end of the drain,
//   * the outage exercised cross-node failover and rebuild traffic,
//   * uplink byte conservation: per-node shares sum to the uplink total,
//   * the invariant checker (kv.placement.domain, rack.uplink.conservation
//     among the rest) stayed silent on both runs.
//
// --bench-json=PATH writes the machine-readable summary (BENCH_rack.json
// in CI: uplink utilization, failover tail latency, rebuild completion).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/invariants.h"
#include "kv/cluster.h"
#include "obs/schema.h"

using namespace gimbal;
using namespace gimbal::bench;
using kv::KvCluster;
using kv::KvClusterConfig;
using kv::YcsbClient;

namespace {

constexpr int kNodes = 3;
constexpr int kSsdsPerNode = 2;
constexpr int kSsds = kNodes * kSsdsPerNode;
constexpr int kInstances = 3;
constexpr int kWindows = 16;

inline Tick Scaled(Tick t) { return Quick() ? t / 2 : t; }
inline Tick Warmup() { return Scaled(Milliseconds(60)); }
inline Tick Measure() { return Scaled(Milliseconds(400)); }
inline uint64_t Records() { return Quick() ? 8'000 : 20'000; }
// Node 1's whole-node outage, relative to measure start.
inline Tick FailAt() { return Warmup() + Scaled(Milliseconds(80)); }
inline Tick RecoverAt() { return Warmup() + Scaled(Milliseconds(200)); }

struct RunResult {
  double kiops = 0;
  double inst_kiops[kInstances] = {};
  double window_kiops[kWindows] = {};
  double read_p99_us = 0;         // whole measurement window
  double outage_read_p99_us = 0;  // windows overlapping the node outage
  uint64_t failed_ops = 0;
  uint64_t aborted_ops = 0;
  uint64_t failover_reads = 0;
  uint64_t degraded_writes = 0;
  uint64_t dirty_recorded = 0;
  uint64_t dirty_repaired = 0;
  uint64_t dirty_dropped = 0;
  uint64_t rebuild_bytes = 0;
  uint64_t lost_writes = 0;  // must stay 0
  size_t dirty_pending = 0;  // ledger entries left after the drain
  double rebuild_done_ms = 0;
  // Rack fabric accounting.
  uint64_t uplink_bytes = 0;
  uint64_t node_bytes[kNodes] = {};
  uint64_t node_drops = 0;
  double uplink_util = 0;  // busy time over wall time, both directions
  bool checker_ok = false;
  size_t checker_violations = 0;
};

RunResult RunScenario(bool faulted) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = kSsds;
  cfg.testbed.nodes = kNodes;
  cfg.testbed.target.cores = kSsdsPerNode;  // per node
  cfg.testbed.condition = SsdCondition::kClean;
  cfg.testbed.ssd.logical_bytes = 256ull << 20;
  cfg.testbed.obs = CurrentObs();
  cfg.testbed.queue_impl = g_queue;
  cfg.testbed.threads = g_threads;
  cfg.testbed.check = &chk;
  cfg.testbed.run_label = faulted ? "faulted" : "control";
  // Capsules to a dark node vanish at the fabric; the initiators' per-IO
  // timeout is the only recovery path, so it must be armed.
  cfg.testbed.retry.io_timeout = Milliseconds(2);
  cfg.hba.backend_bytes = 256ull << 20;
  cfg.db.memtable_bytes = 1ull << 20;
  if (faulted) {
    cfg.testbed.faults.node_failures.push_back({1, FailAt(), RecoverAt()});
  }
  KvCluster cluster(cfg);

  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < kInstances; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    inst.db->BulkLoad(Records(), 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kA;
    spec.record_count = Records();
    spec.seed = static_cast<uint64_t>(i) + 1 + g_seed;
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, /*concurrency=*/8));
  }

  RunResult r;
  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Warmup());
  for (auto& c : clients) c->stats().Reset();
  if (auto* obs = CurrentObs()) obs->metrics.ResetRun(cfg.testbed.run_label);

  uint64_t last_ops = 0;
  bool was_dirty = false;
  auto sample_ledger = [&] {
    size_t pending = 0;
    for (auto* inst : insts) pending += inst->blobs->dirty_count();
    if (pending > 0) {
      was_dirty = true;
    } else if (was_dirty) {
      was_dirty = false;
      r.rebuild_done_ms = ToSec(cluster.sim().now() - Warmup()) * 1000.0;
    }
  };
  // Snapshot the read tail inside the outage by diffing merged histograms
  // at the window edges bracketing [FailAt, RecoverAt).
  LatencyHistogram outage_reads;
  bool outage_open = false;
  const Tick win = Measure() / kWindows;
  for (int w = 0; w < kWindows; ++w) {
    const Tick start = cluster.sim().now();
    const bool in_outage =
        faulted && start + win > FailAt() && start < RecoverAt();
    if (in_outage && !outage_open) {
      outage_open = true;
      for (auto& c : clients) outage_reads.Merge(c->stats().read_latency);
    }
    cluster.sim().RunUntil(start + win);
    if (outage_open && !(faulted && cluster.sim().now() < RecoverAt())) {
      // Outage windows closed: subtract the opening snapshot.
      LatencyHistogram at_end;
      for (auto& c : clients) at_end.Merge(c->stats().read_latency);
      outage_reads = at_end.Subtract(outage_reads);
      r.outage_read_p99_us = outage_reads.Percentile(0.99) / 1000.0;
      outage_open = false;
    }
    uint64_t ops = 0;
    for (auto& c : clients) ops += c->stats().ops;
    r.window_kiops[w] =
        static_cast<double>(ops - last_ops) / ToSec(win) / 1000.0;
    last_ops = ops;
    sample_ledger();
  }

  for (auto& c : clients) c->Stop();
  const Tick drain_end = cluster.sim().now() + Scaled(Milliseconds(300));
  while (cluster.sim().now() < drain_end) {
    cluster.sim().RunUntil(cluster.sim().now() + Scaled(Milliseconds(5)));
    sample_ledger();
  }
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  uint64_t ops = 0;
  LatencyHistogram reads;
  for (int i = 0; i < kInstances; ++i) {
    const auto& cs = clients[static_cast<size_t>(i)]->stats();
    ops += cs.ops;
    reads.Merge(cs.read_latency);
    r.inst_kiops[i] = static_cast<double>(cs.ops) / ToSec(Measure()) / 1000.0;
    r.failed_ops += cs.failed;
    r.aborted_ops += cs.aborted;
    const auto& bs = insts[static_cast<size_t>(i)]->blobs->stats();
    r.failover_reads += bs.failover_reads;
    r.degraded_writes += bs.degraded_writes;
    r.dirty_recorded += bs.dirty_recorded;
    r.dirty_repaired += bs.dirty_repaired;
    r.dirty_dropped += bs.dirty_dropped;
    r.rebuild_bytes += bs.rebuild_bytes;
    r.dirty_pending += insts[static_cast<size_t>(i)]->blobs->dirty_count();
    if (auto* obs = CurrentObs()) {
      const obs::Labels l = obs::Labels::TenantSsd(i, -1);
      r.lost_writes +=
          obs->metrics.GetCounter(obs::schema::kKvLostWrites, l).value();
    }
  }
  r.kiops = static_cast<double>(ops) / ToSec(Measure()) / 1000.0;
  r.read_p99_us = reads.Percentile(0.99) / 1000.0;

  fabric::Network& net = cluster.bed().net();
  r.uplink_bytes = net.uplink_bytes();
  for (int n = 0; n < kNodes; ++n) r.node_bytes[n] = net.node_uplink_bytes(n);
  r.node_drops = net.node_drops();
  // Full-duplex uplink: the busy accumulator covers both directions, so
  // 2x the elapsed time is the saturation denominator.
  r.uplink_util =
      ToSec(net.uplink_busy_time()) / (2.0 * ToSec(cluster.sim().now()));

  chk.CheckDrained();
  r.checker_ok = chk.ok();
  r.checker_violations = chk.violations().size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel --bench-json=PATH off before ObsSession sees (and warns about) it.
  std::string bench_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const char* prefix = "--bench-json=";
    if (i > 0 && std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      bench_json = argv[i] + std::strlen(prefix);
    } else {
      args.push_back(argv[i]);
    }
  }
  ObsSession obs_session(static_cast<int>(args.size()), args.data());
  workload::PrintHeader(
      "fig_rack - rack-scale disaggregation (3 nodes x 2 SSDs, shared ToR)",
      "rack-topology extension (docs/SIMULATOR.md); not a paper figure",
      "per-tenant fairness holds rack-wide; a whole-node failure degrades "
      "but never loses acked writes; every blob regains node-disjoint "
      "replicas before the drain ends");

  const RunResult control = RunScenario(/*faulted=*/false);
  const RunResult faulted = RunScenario(/*faulted=*/true);

  Table summary("YCSB-A aggregate (control vs node-1 outage)");
  summary.Columns({"run", "kiops", "read_p99_us", "outage_p99_us",
                   "failed_ops", "aborted_ops"});
  summary.Row({"control", Table::Num(control.kiops),
               Table::Num(control.read_p99_us), "-",
               Table::Num(double(control.failed_ops), 0),
               Table::Num(double(control.aborted_ops), 0)});
  summary.Row({"faulted", Table::Num(faulted.kiops),
               Table::Num(faulted.read_p99_us),
               Table::Num(faulted.outage_read_p99_us),
               Table::Num(double(faulted.failed_ops), 0),
               Table::Num(double(faulted.aborted_ops), 0)});
  summary.Print();

  Table fair("Rack-level per-tenant fairness (KIOPS; share of aggregate)");
  fair.Columns({"tenant", "control", "ctl_share", "faulted", "flt_share"});
  for (int i = 0; i < kInstances; ++i) {
    fair.Row({std::to_string(i), Table::Num(control.inst_kiops[i]),
              Table::Num(control.kiops > 0
                             ? control.inst_kiops[i] / control.kiops
                             : 0,
                         3),
              Table::Num(faulted.inst_kiops[i]),
              Table::Num(faulted.kiops > 0
                             ? faulted.inst_kiops[i] / faulted.kiops
                             : 0,
                         3)});
  }
  fair.Print();

  Table tl("Throughput timeline (KIOPS per window; node 1 dark mid-run)");
  tl.Columns({"window", "t_ms", "control", "faulted"});
  const double win_ms = ToSec(Measure() / kWindows) * 1000.0;
  for (int w = 0; w < kWindows; ++w) {
    tl.Row({std::to_string(w), Table::Num(win_ms * (w + 1), 1),
            Table::Num(control.window_kiops[w]),
            Table::Num(faulted.window_kiops[w])});
  }
  tl.Print();

  Table rk("Rack fabric (faulted run)");
  rk.Columns({"metric", "value"});
  rk.Row({"uplink_mib", Table::Num(BytesToMiB(faulted.uplink_bytes))});
  rk.Row({"uplink_util", Table::Num(faulted.uplink_util, 4)});
  for (int n = 0; n < kNodes; ++n) {
    rk.Row({std::string("node") + std::to_string(n) + "_mib",
            Table::Num(BytesToMiB(faulted.node_bytes[n]))});
  }
  rk.Row({"node_drops", Table::Num(double(faulted.node_drops), 0)});
  rk.Row({"failover_reads", Table::Num(double(faulted.failover_reads), 0)});
  rk.Row({"degraded_writes", Table::Num(double(faulted.degraded_writes), 0)});
  rk.Row({"rebuild_mib", Table::Num(BytesToMiB(faulted.rebuild_bytes))});
  rk.Row({"rebuild_done_ms", Table::Num(faulted.rebuild_done_ms, 1)});
  rk.Print();

  auto conserved = [](const RunResult& r) {
    uint64_t sum = 0;
    for (uint64_t b : r.node_bytes) sum += b;
    return sum == r.uplink_bytes;
  };
  struct Check {
    const char* name;
    bool pass;
  } checks[] = {
      {"no acked write lost (kv.lost_writes == 0, both runs)",
       control.lost_writes == 0 && faulted.lost_writes == 0},
      {"every blob regained node-disjoint replicas (ledger drained)",
       faulted.dirty_pending == 0 &&
           faulted.dirty_repaired + faulted.dirty_dropped ==
               faulted.dirty_recorded},
      {"node outage exercised degraded writes and rebuild traffic",
       faulted.degraded_writes > 0 && faulted.dirty_recorded > 0 &&
           faulted.rebuild_bytes > 0},
      {"reads failed over across node boundaries",
       faulted.failover_reads > 0},
      {"fabric blacked the dark node out (node_drops > 0 only when faulted)",
       faulted.node_drops > 0 && control.node_drops == 0},
      {"uplink byte conservation (per-node shares sum to the total)",
       conserved(control) && conserved(faulted)},
      {"invariant checker silent (faulted run)",
       faulted.checker_ok && faulted.checker_violations == 0},
      {"invariant checker silent (control run)",
       control.checker_ok && control.checker_violations == 0},
      {"control run saw no fault handling",
       control.failover_reads == 0 && control.degraded_writes == 0 &&
           control.dirty_recorded == 0 && control.failed_ops == 0 &&
           control.aborted_ops == 0},
  };
  bool all = true;
  std::printf("\n");
  for (const Check& c : checks) {
    all = all && c.pass;
    std::printf("%-60s %s\n", c.name, c.pass ? "PASS" : "FAIL");
  }

  if (!bench_json.empty()) {
    std::FILE* f = std::fopen(bench_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: could not write %s\n", bench_json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig_rack\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", Quick() ? "quick" : "full");
    std::fprintf(f, "  \"nodes\": %d,\n  \"ssds_per_node\": %d,\n", kNodes,
                 kSsdsPerNode);
    std::fprintf(f, "  \"control_kiops\": %.1f,\n", control.kiops);
    std::fprintf(f, "  \"faulted_kiops\": %.1f,\n", faulted.kiops);
    std::fprintf(f, "  \"uplink_utilization\": %.4f,\n", faulted.uplink_util);
    std::fprintf(f, "  \"uplink_mib\": %.1f,\n",
                 BytesToMiB(faulted.uplink_bytes));
    std::fprintf(f, "  \"node_drops\": %llu,\n",
                 static_cast<unsigned long long>(faulted.node_drops));
    std::fprintf(f, "  \"failover_read_p99_us\": %.1f,\n",
                 faulted.outage_read_p99_us);
    std::fprintf(f, "  \"steady_read_p99_us\": %.1f,\n", control.read_p99_us);
    std::fprintf(f, "  \"rebuild_completion_ms\": %.1f,\n",
                 faulted.rebuild_done_ms);
    std::fprintf(f, "  \"rebuild_mib\": %.1f,\n",
                 BytesToMiB(faulted.rebuild_bytes));
    std::fprintf(f, "  \"self_checks_pass\": %s\n}\n", all ? "true" : "false");
    std::fclose(f);
  }
  return all ? 0 : 1;
}
