// Figure 15 (Appendix A): unloaded (QD1) random-read latency vs IO size
// under four scenarios: vanilla (clean), fragmented, 70/30 read-write mix,
// and QD8.
//
// Paper shape: fragmentation (+52%), write mixing (+84%) and concurrency
// (+81%) all raise read latency, larger IOs degrading the most.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double ReadLatencyUs(SsdCondition cond, uint32_t io_bytes, double read_ratio,
                     uint32_t qd) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, cond);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = io_bytes;
  spec.read_ratio = read_ratio;
  spec.queue_depth = qd;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(100), Milliseconds(400));
  return w.stats().read_latency.mean() / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 15 - Random read latency vs IO size under four scenarios",
      "Gimbal (SIGCOMM'21) Figure 15 / Appendix A",
      "fragmented / 70-30 mix / QD8 all raise read latency vs vanilla; "
      "large IOs suffer the most");

  Table t("Average read latency (us)");
  t.Columns({"io_size", "vanilla", "fragmented", "70/30_RW", "QD8"});
  for (uint32_t kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    uint32_t bytes = kb * 1024;
    t.Row({std::to_string(kb) + "KB",
           Table::Num(ReadLatencyUs(SsdCondition::kClean, bytes, 1.0, 1)),
           Table::Num(ReadLatencyUs(SsdCondition::kFragmented, bytes, 1.0, 1)),
           Table::Num(ReadLatencyUs(SsdCondition::kClean, bytes, 0.7, 1)),
           Table::Num(ReadLatencyUs(SsdCondition::kClean, bytes, 1.0, 8))});
  }
  t.Print();
  return 0;
}
