// Figure 3: maximum 4 KiB random-read and sequential-write throughput as
// the number of target cores grows, for server and SmartNIC JBOFs (4 SSDs).
//
// Paper shape: the server saturates the storage (~1.5M read KIOPS) with 2
// cores; the SmartNIC needs ~3 of its wimpy cores; 1 core suffices for
// large IOs on both.
#include "bench_util.h"

using namespace gimbal;
using namespace gimbal::bench;

namespace {

double Kiops(fabric::TargetConfig target, int cores, bool is_write) {
  TestbedConfig cfg = MicroConfig(Scheme::kVanilla, SsdCondition::kClean);
  cfg.target = target;
  cfg.target.cores = cores;
  cfg.num_ssds = 4;
  cfg.ssd.logical_bytes = 256ull << 20;
  Testbed bed(cfg);
  for (int s = 0; s < 4; ++s) {
    // Two deep workers per SSD to exceed device concurrency.
    for (int i = 0; i < 2; ++i) {
      FioSpec spec;
      spec.io_bytes = 4096;
      spec.read_ratio = is_write ? 0.0 : 1.0;
      spec.sequential = is_write;
      spec.queue_depth = 96;
      spec.seed = static_cast<uint64_t>(s * 2 + i + 1) + g_seed;
      bed.AddWorker(spec, s);
    }
  }
  bed.Run(Milliseconds(100), Milliseconds(300));
  uint64_t ios = 0;
  for (auto& w : bed.workers()) ios += w->stats().total_ios();
  return static_cast<double>(ios) / ToSec(bed.measured()) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  workload::PrintHeader(
      "Fig 3 - Throughput vs target core count (4 SSDs, 4KB IOs)",
      "Gimbal (SIGCOMM'21) Figure 3",
      "server saturates ~1.5M read IOPS with 2 cores; SmartNIC needs ~3 "
      "cores; both flat beyond the knee");

  Table t("Aggregated throughput (KIOPS)");
  t.Columns({"cores", "server_rd", "smartnic_rd", "server_wr",
             "smartnic_wr"});
  for (int cores = 1; cores <= 8; ++cores) {
    t.Row({std::to_string(cores),
           Table::Num(Kiops(fabric::TargetConfig::ServerLike(), cores, false)),
           Table::Num(
               Kiops(fabric::TargetConfig::SmartNicLike(), cores, false)),
           Table::Num(Kiops(fabric::TargetConfig::ServerLike(), cores, true)),
           Table::Num(
               Kiops(fabric::TargetConfig::SmartNicLike(), cores, true))});
  }
  t.Print();
  return 0;
}
