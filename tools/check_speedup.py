#!/usr/bin/env python3
"""CI gate on the sharded engine's measured speedup (ROADMAP item 1).

Reads BENCH_sim.json (written by bench_sim) and checks the threads_sweep
points against per-thread-count thresholds. A point measured with fewer
hardware threads than worker threads is SKIPPED with a logged reason — an
oversubscribed runner measures epoch-barrier overhead, not parallelism, so
gating on it would be noise in both directions (spurious failures on a
starved runner, spurious passes if a slowdown hid behind the skip logic).

Usage: check_speedup.py [BENCH_sim.json]
Exit codes: 0 pass/skip, 1 gate failure, 2 malformed input.
"""

import json
import sys

# threads -> minimum speedup_vs_serial. The threads=4 gate is set below the
# ROADMAP's 3x-at-6-shards target to keep shared-runner jitter from flaking
# the job; the threads=2 gate only asserts parallelism is not a *loss*.
GATES = {2: 1.0, 4: 1.8}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_speedup: cannot read {path}: {e}")
        return 2

    sweep = doc.get("threads_sweep", {})
    points = sweep.get("points", [])
    if not points:
        print(f"check_speedup: no threads_sweep points in {path}")
        return 2

    failures = 0
    gated = 0
    for p in points:
        threads = p.get("threads")
        if threads not in GATES:
            continue
        speedup = p.get("speedup_vs_serial", 0.0)
        hw = p.get("hardware_threads", sweep.get("hardware_threads", 0))
        if hw < threads:
            print(
                f"SKIP  threads={threads}: runner has {hw} hardware "
                f"thread(s) < {threads} workers — measured {speedup:.2f}x "
                "is oversubscription overhead, not parallel speedup; "
                "not gated"
            )
            continue
        gated += 1
        need = GATES[threads]
        verdict = "ok" if speedup >= need else "FAIL"
        print(
            f"{verdict:4}  threads={threads}: speedup_vs_serial "
            f"{speedup:.2f}x (need >= {need}, {hw} hardware threads)"
        )
        if speedup < need:
            failures += 1

    if gated == 0:
        print("check_speedup: every gated point skipped (starved runner); "
              "gate not evaluated")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
